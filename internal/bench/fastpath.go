package bench

import (
	"fmt"
	"time"

	"splitmem"
	"splitmem/internal/fleet"
	"splitmem/internal/workloads"
)

// fastPathWorkloads are the cataloged programs the ablation measures: the
// compute-bound kernels where fetch/decode dominates, plus a syscall-heavy
// program where it does not.
var fastPathWorkloads = []string{"nbench", "gzip", "syscall"}

// fastPathReps is how many times each configuration runs; the minimum host
// time is reported, which is the standard way to strip scheduler noise from
// a throughput measurement.
const fastPathReps = 3

// FastPathRun is one measured configuration of the ablation.
type FastPathRun struct {
	Workload     string
	Cached       bool
	Cycles       uint64  // simulated cycles (must not depend on Cached)
	Instructions uint64  // retired instructions (must not depend on Cached)
	Work         float64 // workload work units
	HostNS       int64   // best-of-reps host nanoseconds
	HitRate      float64 // decode-cache hit rate (0 when Cached is false)
}

// SimThroughput is the deterministic figure of merit: work per simulated
// megacycle. It is independent of the host machine AND of the decode cache
// (the cache is architecturally invisible), so it is the value the CI
// regression guard pins.
func (r FastPathRun) SimThroughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Work / (float64(r.Cycles) / 1e6)
}

// HostMIPS is retired guest instructions per host second, in millions.
func (r FastPathRun) HostMIPS() float64 {
	if r.HostNS == 0 {
		return 0
	}
	return float64(r.Instructions) * 1e3 / float64(r.HostNS)
}

// measureFastPath runs one workload under one cache setting fastPathReps
// times and keeps the fastest host time.
func measureFastPath(name string, cached bool) (FastPathRun, error) {
	prog, ok := workloads.Lookup(name)
	if !ok {
		return FastPathRun{}, fmt.Errorf("fastpath: unknown workload %q", name)
	}
	run := FastPathRun{Workload: name, Cached: cached}
	for rep := 0; rep < fastPathReps; rep++ {
		m, err := splitmem.New(splitmem.Config{
			Protection:    splitmem.ProtSplit,
			NoDecodeCache: !cached,
		})
		if err != nil {
			return run, err
		}
		p, err := m.LoadAsm(prog.Src, "fp-"+name)
		if err != nil {
			return run, err
		}
		if prog.Input != "" {
			p.StdinWrite([]byte(prog.Input))
			p.StdinClose()
		}
		t0 := time.Now()
		res := m.Run(40_000_000_000)
		host := time.Since(t0).Nanoseconds()
		if res.Reason != splitmem.ReasonAllDone {
			return run, fmt.Errorf("fastpath %s: stopped: %v", name, res.Reason)
		}
		s := m.Stats()
		if rep == 0 {
			run.Cycles, run.Instructions, run.Work = s.Cycles, s.Instructions, prog.Work
			if hm := s.DecodeHits + s.DecodeMisses; hm > 0 {
				run.HitRate = float64(s.DecodeHits) / float64(hm)
			}
			run.HostNS = host
		} else {
			if s.Cycles != run.Cycles || s.Instructions != run.Instructions {
				return run, fmt.Errorf("fastpath %s: nondeterministic run (cycles %d vs %d)",
					name, s.Cycles, run.Cycles)
			}
			if host < run.HostNS {
				run.HostNS = host
			}
		}
	}
	return run, nil
}

// FastPath measures the predecode-cache ablation: every workload runs under
// the split engine with the cache off and on. The simulated side (cycles,
// instructions) must be bit-identical across the pair — that invariant is
// enforced here, not just documented — while the host side reports the
// speedup the cache buys.
func FastPath() (*Table, []FastPathRun, error) {
	t := &Table{
		Title:  "Fast path: predecode-cache ablation (split engine)",
		Header: []string{"workload", "Mcycles", "work/Mcycle", "slow MIPS", "fast MIPS", "speedup", "hit rate"},
		Notes: []string{
			"simulated cycles and retired instructions are bit-identical with the cache on and off (enforced)",
			"MIPS = retired guest instructions per host second / 1e6; best of " +
				fmt.Sprint(fastPathReps) + " runs",
		},
	}
	var runs []FastPathRun
	for _, name := range fastPathWorkloads {
		slow, err := measureFastPath(name, false)
		if err != nil {
			return nil, nil, err
		}
		fast, err := measureFastPath(name, true)
		if err != nil {
			return nil, nil, err
		}
		if slow.Cycles != fast.Cycles || slow.Instructions != fast.Instructions {
			return nil, nil, fmt.Errorf(
				"fastpath %s: cache changed the architecture: cycles %d vs %d, instrs %d vs %d",
				name, slow.Cycles, fast.Cycles, slow.Instructions, fast.Instructions)
		}
		runs = append(runs, slow, fast)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(fast.Cycles)/1e6),
			fmt.Sprintf("%.2f", fast.SimThroughput()),
			fmt.Sprintf("%.1f", slow.HostMIPS()),
			fmt.Sprintf("%.1f", fast.HostMIPS()),
			fmt.Sprintf("%.2fx", fast.HostMIPS()/slow.HostMIPS()),
			fmt.Sprintf("%.1f%%", 100*fast.HitRate),
		})
	}
	return t, runs, nil
}

// FastPathSimFigure renders the deterministic side of the ablation —
// simulated work per megacycle, per workload, cache on — as the figure the
// CI perf guard pins against the committed BENCH_results.json: the values
// are host-independent, so any drift is a real simulator regression, never
// noise. The host speedup is a second, same-host-relative series.
func FastPathSimFigure(runs []FastPathRun) *Figure {
	sim := Series{Name: "sim work/Mcycle (cache on)"}
	speedup := Series{Name: "host speedup (on/off)"}
	byName := map[string]*FastPathRun{}
	for i := range runs {
		r := &runs[i]
		if r.Cached {
			sim.Labels = append(sim.Labels, r.Workload)
			sim.Values = append(sim.Values, r.SimThroughput())
			if slow := byName[r.Workload]; slow != nil && slow.HostMIPS() > 0 {
				speedup.Labels = append(speedup.Labels, r.Workload)
				speedup.Values = append(speedup.Values, r.HostMIPS()/slow.HostMIPS())
			}
		} else {
			byName[r.Workload] = r
		}
	}
	return &Figure{
		Title:  "Fast path: deterministic throughput + host speedup",
		YLabel: "work/Mcycle; speedup ratio",
		Series: []Series{sim, speedup},
		Notes: []string{
			"the sim series is deterministic and guarded by TestFastPathNoRegression (>10% drop fails CI)",
		},
	}
}

// FleetScaling runs the nbench fleet at increasing fleet sizes and reports
// aggregate simulated work and host wall time per size. Simulated totals
// scale exactly linearly (each machine is deterministic and independent);
// wall time is whatever the host gives us and is reported, not asserted.
func FleetScaling(maxN, workers int) (*Figure, error) {
	job, err := fleet.WorkloadJob("nbench")
	if err != nil {
		return nil, err
	}
	f := &Figure{
		Title:  fmt.Sprintf("Fleet scaling: aggregate nbench, %d workers", workers),
		YLabel: "aggregate simulated Gcycles / host wall ms",
		Notes: []string{
			"per-machine results are bit-identical for any worker count (fleet determinism contract)",
		},
	}
	sim := Series{Name: "simulated Gcycles"}
	wall := Series{Name: "host wall ms"}
	for n := 1; n <= maxN; n *= 2 {
		agg, err := fleet.Run(fleet.Config{
			N: n, Workers: workers, Seed: 0xF1EE7,
			Machine: splitmem.Config{Protection: splitmem.ProtSplit},
			Job:     job,
		})
		if err != nil {
			return nil, err
		}
		if agg.Errors > 0 {
			return nil, fmt.Errorf("fleet scaling n=%d: %d machines failed", n, agg.Errors)
		}
		label := fmt.Sprintf("n=%d", n)
		sim.Labels = append(sim.Labels, label)
		sim.Values = append(sim.Values, float64(agg.Totals.Cycles)/1e9)
		wall.Labels = append(wall.Labels, label)
		wall.Values = append(wall.Values, float64(agg.Wall.Milliseconds()))
	}
	f.Series = []Series{sim, wall}
	return f, nil
}
