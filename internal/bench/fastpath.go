package bench

import (
	"fmt"
	"time"

	"splitmem"
	"splitmem/internal/fleet"
	"splitmem/internal/workloads"
)

// fastPathWorkloads are the cataloged programs the ablation measures: the
// compute-bound kernels where fetch/decode dominates, plus a syscall-heavy
// program where it does not.
var fastPathWorkloads = []string{"nbench", "gzip", "syscall"}

// fastPathEngines are the three execution-engine tiers, slowest first: the
// pure interpreter, the predecode cache, and the superblock threaded-code
// engine stacked on top of it.
var fastPathEngines = []string{"interp", "predecode", "superblock"}

// fastPathReps is how many times each configuration runs; the minimum host
// time is reported, which is the standard way to strip scheduler noise from
// a throughput measurement.
const fastPathReps = 3

// FastPathRun is one measured configuration of the ablation.
type FastPathRun struct {
	Workload     string
	Engine       string  // "interp", "predecode", or "superblock"
	Cycles       uint64  // simulated cycles (must not depend on Engine)
	Instructions uint64  // retired instructions (must not depend on Engine)
	Work         float64 // workload work units
	HostNS       int64   // best-of-reps host nanoseconds
	HitRate      float64 // decode-cache hit rate (0 for the interpreter)
	SBEntered    uint64  // superblock entries (superblock engine only)
}

// SimThroughput is the deterministic figure of merit: work per simulated
// megacycle. It is independent of the host machine AND of the engine tier
// (both fast paths are architecturally invisible), so it is the value the
// CI regression guard pins.
func (r FastPathRun) SimThroughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Work / (float64(r.Cycles) / 1e6)
}

// HostMIPS is retired guest instructions per host second, in millions.
func (r FastPathRun) HostMIPS() float64 {
	if r.HostNS == 0 {
		return 0
	}
	return float64(r.Instructions) * 1e3 / float64(r.HostNS)
}

// engineConfig maps an engine tier onto the public config switches.
func engineConfig(engine string, cfg *splitmem.Config) error {
	switch engine {
	case "interp":
		cfg.NoDecodeCache, cfg.NoSuperblocks = true, true
	case "predecode":
		cfg.NoSuperblocks = true
	case "superblock":
	default:
		return fmt.Errorf("fastpath: unknown engine %q", engine)
	}
	return nil
}

// measureFastPath runs one workload on one engine tier fastPathReps times
// and keeps the fastest host time.
func measureFastPath(name, engine string) (FastPathRun, error) {
	prog, ok := workloads.Lookup(name)
	if !ok {
		return FastPathRun{}, fmt.Errorf("fastpath: unknown workload %q", name)
	}
	run := FastPathRun{Workload: name, Engine: engine}
	for rep := 0; rep < fastPathReps; rep++ {
		cfg := splitmem.Config{Protection: splitmem.ProtSplit}
		if err := engineConfig(engine, &cfg); err != nil {
			return run, err
		}
		m, err := splitmem.New(cfg)
		if err != nil {
			return run, err
		}
		p, err := m.LoadAsm(prog.Src, "fp-"+name)
		if err != nil {
			return run, err
		}
		if prog.Input != "" {
			p.StdinWrite([]byte(prog.Input))
			p.StdinClose()
		}
		t0 := time.Now()
		res := m.Run(40_000_000_000)
		host := time.Since(t0).Nanoseconds()
		if res.Reason != splitmem.ReasonAllDone {
			return run, fmt.Errorf("fastpath %s/%s: stopped: %v", name, engine, res.Reason)
		}
		s := m.Stats()
		if rep == 0 {
			run.Cycles, run.Instructions, run.Work = s.Cycles, s.Instructions, prog.Work
			if hm := s.DecodeHits + s.DecodeMisses; hm > 0 {
				run.HitRate = float64(s.DecodeHits) / float64(hm)
			}
			run.SBEntered = s.SuperblockEntered
			run.HostNS = host
		} else {
			if s.Cycles != run.Cycles || s.Instructions != run.Instructions {
				return run, fmt.Errorf("fastpath %s/%s: nondeterministic run (cycles %d vs %d)",
					name, engine, s.Cycles, run.Cycles)
			}
			if host < run.HostNS {
				run.HostNS = host
			}
		}
	}
	return run, nil
}

// FastPath measures the engine ablation: every workload runs under the
// split engine on all three tiers — interpreter, predecode cache, superblock
// engine. The simulated side (cycles, instructions) must be bit-identical
// across the triple — that invariant is enforced here, not just documented —
// while the host side reports the speedup each tier buys.
func FastPath() (*Table, []FastPathRun, error) {
	t := &Table{
		Title:  "Fast path: engine ablation (split engine)",
		Header: []string{"workload", "Mcycles", "work/Mcycle", "interp MIPS", "predecode MIPS", "superblock MIPS", "sb/interp", "sb/predec", "hit rate"},
		Notes: []string{
			"simulated cycles and retired instructions are bit-identical across all three engines (enforced)",
			"MIPS = retired guest instructions per host second / 1e6; best of " +
				fmt.Sprint(fastPathReps) + " runs",
		},
	}
	var runs []FastPathRun
	for _, name := range fastPathWorkloads {
		var triple [3]FastPathRun
		for i, engine := range fastPathEngines {
			r, err := measureFastPath(name, engine)
			if err != nil {
				return nil, nil, err
			}
			if i > 0 && (r.Cycles != triple[0].Cycles || r.Instructions != triple[0].Instructions) {
				return nil, nil, fmt.Errorf(
					"fastpath %s: engine %s changed the architecture: cycles %d vs %d, instrs %d vs %d",
					name, engine, r.Cycles, triple[0].Cycles, r.Instructions, triple[0].Instructions)
			}
			triple[i] = r
		}
		if triple[2].SBEntered == 0 {
			return nil, nil, fmt.Errorf("fastpath %s: superblock engine never entered a block", name)
		}
		runs = append(runs, triple[:]...)
		interp, predec, sb := triple[0], triple[1], triple[2]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(sb.Cycles)/1e6),
			fmt.Sprintf("%.2f", sb.SimThroughput()),
			fmt.Sprintf("%.1f", interp.HostMIPS()),
			fmt.Sprintf("%.1f", predec.HostMIPS()),
			fmt.Sprintf("%.1f", sb.HostMIPS()),
			fmt.Sprintf("%.2fx", sb.HostMIPS()/interp.HostMIPS()),
			fmt.Sprintf("%.2fx", sb.HostMIPS()/predec.HostMIPS()),
			fmt.Sprintf("%.1f%%", 100*sb.HitRate),
		})
	}
	return t, runs, nil
}

// FastPathSimFigure renders the deterministic side of the ablation —
// simulated work per megacycle, per workload — as the figure the CI perf
// guard pins against the committed BENCH_results.json: the values are
// host-independent, so any drift is a real simulator regression, never
// noise. The host speedups are second and third, same-host-relative series.
func FastPathSimFigure(runs []FastPathRun) *Figure {
	sim := Series{Name: "sim work/Mcycle"}
	sbVsInterp := Series{Name: "host speedup (superblock/interp)"}
	sbVsPredec := Series{Name: "host speedup (superblock/predecode)"}
	byEngine := map[string]map[string]FastPathRun{}
	for _, r := range runs {
		if byEngine[r.Engine] == nil {
			byEngine[r.Engine] = map[string]FastPathRun{}
		}
		byEngine[r.Engine][r.Workload] = r
	}
	for _, name := range fastPathWorkloads {
		sb, ok := byEngine["superblock"][name]
		if !ok {
			continue
		}
		sim.Labels = append(sim.Labels, name)
		sim.Values = append(sim.Values, sb.SimThroughput())
		if interp, ok := byEngine["interp"][name]; ok && interp.HostMIPS() > 0 {
			sbVsInterp.Labels = append(sbVsInterp.Labels, name)
			sbVsInterp.Values = append(sbVsInterp.Values, sb.HostMIPS()/interp.HostMIPS())
		}
		if predec, ok := byEngine["predecode"][name]; ok && predec.HostMIPS() > 0 {
			sbVsPredec.Labels = append(sbVsPredec.Labels, name)
			sbVsPredec.Values = append(sbVsPredec.Values, sb.HostMIPS()/predec.HostMIPS())
		}
	}
	return &Figure{
		Title:  "Fast path: deterministic throughput + host speedups",
		YLabel: "work/Mcycle; speedup ratio",
		Series: []Series{sim, sbVsInterp, sbVsPredec},
		Notes: []string{
			"the sim series is deterministic and guarded by TestFastPathNoRegression (>10% drop fails CI)",
		},
	}
}

// FleetScaling runs the nbench fleet at increasing fleet sizes and reports
// aggregate simulated work and host wall time per size. Simulated totals
// scale exactly linearly (each machine is deterministic and independent);
// wall time is whatever the host gives us and is reported, not asserted.
func FleetScaling(maxN, workers int) (*Figure, error) {
	job, err := fleet.WorkloadJob("nbench")
	if err != nil {
		return nil, err
	}
	f := &Figure{
		Title:  fmt.Sprintf("Fleet scaling: aggregate nbench, %d workers", workers),
		YLabel: "aggregate simulated Gcycles / host wall ms",
		Notes: []string{
			"per-machine results are bit-identical for any worker count (fleet determinism contract)",
		},
	}
	sim := Series{Name: "simulated Gcycles"}
	wall := Series{Name: "host wall ms"}
	for n := 1; n <= maxN; n *= 2 {
		agg, err := fleet.Run(fleet.Config{
			N: n, Workers: workers, Seed: 0xF1EE7,
			Machine: splitmem.Config{Protection: splitmem.ProtSplit},
			Job:     job,
		})
		if err != nil {
			return nil, err
		}
		if agg.Errors > 0 {
			return nil, fmt.Errorf("fleet scaling n=%d: %d machines failed", n, agg.Errors)
		}
		label := fmt.Sprintf("n=%d", n)
		sim.Labels = append(sim.Labels, label)
		sim.Values = append(sim.Values, float64(agg.Totals.Cycles)/1e9)
		wall.Labels = append(wall.Labels, label)
		wall.Values = append(wall.Values, float64(agg.Wall.Milliseconds()))
	}
	f.Series = []Series{sim, wall}
	return f, nil
}
