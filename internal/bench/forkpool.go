package bench

// The warm-pool benchmark: machine start latency, cold boot vs snapshot fork.
//
// Cold start is everything a fresh job pays before its first instruction —
// assemble the source, build the machine, load the program. Fork start is
// what a warm-pool job pays: boot from the template Image, attaching every
// physical frame copy-on-write (no frame bytes move). The determinism side
// (forked run == cold run, cycle for cycle) is enforced here too, so the
// latency numbers can never come from a fork that cut a corner.

import (
	"fmt"
	"time"

	"splitmem"
	"splitmem/internal/workloads"
)

// forkPoolWorkloads are the measured job classes: a compute kernel, a
// memory-heavy compressor, and a syscall-heavy program.
var forkPoolWorkloads = []string{"nbench", "gzip", "syscall"}

// forkPoolReps is how many times each start path runs; the minimum is
// reported, the standard way to strip scheduler noise from a latency number.
const forkPoolReps = 25

// ForkPoolRun is one workload's cold-vs-fork measurement.
type ForkPoolRun struct {
	Workload string
	ColdNS   int64 // best-of cold start: Assemble + New + LoadProgram
	ForkNS   int64 // best-of fork start: Image.Boot (CoW attach)

	Cycles        uint64 // simulated cycles to completion (fork == cold, enforced)
	Instructions  uint64 // retired instructions (fork == cold, enforced)
	SharedFrames  uint64 // frames a fresh fork shares with the template
	PrivateFrames uint64 // frames one fork privatized running to completion
}

// Speedup is the figure the CI guard pins: cold-start over fork-start.
func (r ForkPoolRun) Speedup() float64 {
	if r.ForkNS == 0 {
		return 0
	}
	return float64(r.ColdNS) / float64(r.ForkNS)
}

// SharedKiB is the per-fork dedup saving at boot: memory a cold boot would
// have duplicated that a fork shares with its template instead.
func (r ForkPoolRun) SharedKiB() uint64 { return r.SharedFrames * 4 }

// measureForkPool measures one workload end to end.
func measureForkPool(name string) (ForkPoolRun, error) {
	prog, ok := workloads.Lookup(name)
	if !ok {
		return ForkPoolRun{}, fmt.Errorf("forkpool: unknown workload %q", name)
	}
	run := ForkPoolRun{Workload: name}
	cfg := splitmem.Config{Protection: splitmem.ProtSplit}

	// Template: one cold machine parked right after program load, frozen.
	tm, err := splitmem.New(cfg)
	if err != nil {
		return run, err
	}
	if _, err := tm.LoadAsm(prog.Src, "wp-"+name); err != nil {
		return run, err
	}
	img, err := tm.Image()
	if err != nil {
		return run, err
	}
	tm.Close()

	finish := func(m *splitmem.Machine) (splitmem.Stats, error) {
		p, ok := m.Kernel().Process(1)
		if !ok {
			return splitmem.Stats{}, fmt.Errorf("forkpool %s: root process missing", name)
		}
		if prog.Input != "" {
			p.StdinWrite([]byte(prog.Input))
		}
		p.StdinClose()
		if res := m.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
			return splitmem.Stats{}, fmt.Errorf("forkpool %s: stopped: %v", name, res.Reason)
		}
		return m.Stats(), nil
	}

	// Determinism gate: a forked run must retire exactly what a cold run does.
	cm, err := splitmem.New(cfg)
	if err != nil {
		return run, err
	}
	if _, err := cm.LoadAsm(prog.Src, "wp-"+name); err != nil {
		return run, err
	}
	cold, err := finish(cm)
	if err != nil {
		return run, err
	}
	fm, err := img.Boot()
	if err != nil {
		return run, err
	}
	run.SharedFrames = fm.Stats().MemSharedFrames
	forked, err := finish(fm)
	if err != nil {
		return run, err
	}
	if forked.Cycles != cold.Cycles || forked.Instructions != cold.Instructions {
		return run, fmt.Errorf("forkpool %s: fork changed the architecture: cycles %d vs %d, instrs %d vs %d",
			name, forked.Cycles, cold.Cycles, forked.Instructions, cold.Instructions)
	}
	run.Cycles, run.Instructions = cold.Cycles, cold.Instructions
	run.PrivateFrames = forked.MemPrivateFrames
	fm.Close()

	// Cold-start latency: assemble + build + load, the full price of a
	// from-scratch job (the serve cold path pays exactly this per admission).
	for rep := 0; rep < forkPoolReps; rep++ {
		t0 := time.Now()
		p, err := splitmem.Assemble(prog.Src)
		if err != nil {
			return run, err
		}
		m, err := splitmem.New(cfg)
		if err != nil {
			return run, err
		}
		if _, err := m.LoadProgram(p, "wp-"+name); err != nil {
			return run, err
		}
		host := time.Since(t0).Nanoseconds()
		if rep == 0 || host < run.ColdNS {
			run.ColdNS = host
		}
	}

	// Fork-start latency: boot from the template image.
	for rep := 0; rep < forkPoolReps; rep++ {
		t0 := time.Now()
		m, err := img.Boot()
		if err != nil {
			return run, err
		}
		host := time.Since(t0).Nanoseconds()
		m.Close()
		if rep == 0 || host < run.ForkNS {
			run.ForkNS = host
		}
	}
	return run, nil
}

// ForkPool measures warm-pool economics for every job class: cold-start vs
// fork-start latency (with the fork == cold determinism gate enforced) and
// the frames each fork shares with its template instead of duplicating.
func ForkPool() (*Table, []ForkPoolRun, error) {
	t := &Table{
		Title: "Warm pool: cold boot vs snapshot fork",
		Header: []string{"workload", "cold µs", "fork µs", "speedup",
			"shared frames/fork", "shared KiB/fork", "privatized by run"},
		Notes: []string{
			"cold = assemble + build machine + load program; fork = Image.Boot (copy-on-write attach); best of " +
				fmt.Sprint(forkPoolReps) + " runs",
			"forked runs retire bit-identical cycles and instructions to cold runs (enforced)",
			"shared frames are deduplicated across every concurrent fork of the same template",
		},
	}
	var runs []ForkPoolRun
	for _, name := range forkPoolWorkloads {
		r, err := measureForkPool(name)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, r)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(r.ColdNS)/1e3),
			fmt.Sprintf("%.1f", float64(r.ForkNS)/1e3),
			fmt.Sprintf("%.1fx", r.Speedup()),
			fmt.Sprint(r.SharedFrames),
			fmt.Sprint(r.SharedKiB()),
			fmt.Sprint(r.PrivateFrames),
		})
	}
	return t, runs, nil
}

// ForkPoolFigure renders the warm-pool figure for BENCH_results.json: start
// latencies, the speedup the CI guard floors, and per-fork shared memory.
func ForkPoolFigure(runs []ForkPoolRun) *Figure {
	cold := Series{Name: "cold start µs"}
	fork := Series{Name: "fork start µs"}
	speedup := Series{Name: "speedup (cold/fork)"}
	shared := Series{Name: "shared KiB/fork"}
	for _, r := range runs {
		cold.Labels = append(cold.Labels, r.Workload)
		cold.Values = append(cold.Values, float64(r.ColdNS)/1e3)
		fork.Labels = append(fork.Labels, r.Workload)
		fork.Values = append(fork.Values, float64(r.ForkNS)/1e3)
		speedup.Labels = append(speedup.Labels, r.Workload)
		speedup.Values = append(speedup.Values, r.Speedup())
		shared.Labels = append(shared.Labels, r.Workload)
		shared.Values = append(shared.Values, float64(r.SharedKiB()))
	}
	return &Figure{
		Title:  "Warm pool: cold boot vs snapshot fork",
		YLabel: "µs; ratio; KiB",
		Series: []Series{cold, fork, speedup, shared},
		Notes: []string{
			"host latencies (informational in the committed baseline); the speedup floor is enforced by " +
				"TestForkPoolSpeedupGuard under SPLITMEM_FORKPOOL_GUARD=1",
		},
	}
}
