package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// ResultsSchema identifies the BENCH_results.json wire format; bump the
// version suffix on any incompatible change. The schema is documented in
// EXPERIMENTS.md.
const ResultsSchema = "splitmem-bench/v1"

// Results is the machine-readable form of a benchmark run: every table and
// figure the run produced, in the order produced. Marshals to the
// BENCH_results.json document consumed by CI and plotting scripts.
type Results struct {
	Schema    string         `json:"schema"`
	GoVersion string         `json:"go_version"`
	Tables    []TableResult  `json:"tables"`
	Figures   []FigureResult `json:"figures"`
}

// TableResult is one rendered table.
type TableResult struct {
	ID     string     `json:"id"` // stable experiment id ("table3")
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// FigureResult is one rendered figure.
type FigureResult struct {
	ID     string         `json:"id"` // stable experiment id ("fig6" ... "fig9")
	Title  string         `json:"title"`
	YLabel string         `json:"ylabel"`
	Series []SeriesResult `json:"series"`
	Notes  []string       `json:"notes,omitempty"`
}

// SeriesResult is one named line of a figure.
type SeriesResult struct {
	Name   string    `json:"name"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

// NewResults creates an empty results document.
func NewResults() *Results {
	return &Results{
		Schema:    ResultsSchema,
		GoVersion: runtime.Version(),
		Tables:    []TableResult{},
		Figures:   []FigureResult{},
	}
}

// AddTable appends a table under a stable experiment id.
func (r *Results) AddTable(id string, t *Table) {
	r.Tables = append(r.Tables, TableResult{
		ID:     id,
		Title:  t.Title,
		Header: t.Header,
		Rows:   t.Rows,
		Notes:  t.Notes,
	})
}

// AddFigure appends a figure under a stable experiment id.
func (r *Results) AddFigure(id string, f *Figure) {
	fr := FigureResult{
		ID:     id,
		Title:  f.Title,
		YLabel: f.YLabel,
		Notes:  f.Notes,
	}
	for _, s := range f.Series {
		fr.Series = append(fr.Series, SeriesResult{Name: s.Name, Labels: s.Labels, Values: s.Values})
	}
	r.Figures = append(r.Figures, fr)
}

// WriteJSON writes the document as indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
