package bench

import (
	"fmt"
	"net/http/httptest"

	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

// ServeThroughput measures the splitmem-serve detonation service under the
// standard load harness: `clients` concurrent clients, each submitting
// `jobs` busy-loop programs to an in-process server with `workers`
// simulation workers, over both transports. The run also enforces the
// service contract — it is an error, not a data point, if any acknowledged
// job is lost or a stream is left unterminated.
func ServeThroughput(clients, jobs, workers int) (*Figure, error) {
	f := &Figure{
		Title:  fmt.Sprintf("Service throughput: %d clients x %d jobs, %d workers", clients, jobs, workers),
		YLabel: "completed jobs / second",
		Notes: []string{
			"zero acknowledged-then-lost jobs and zero truncated streams (loadtest contract)",
			"backlog = workers, so admission sheds load as 429s under this fan-in",
		},
	}
	jps := Series{Name: "jobs/s"}
	shed := Series{Name: "429s shed"}
	for _, stream := range []bool{false, true} {
		s, err := serve.New(serve.Config{Workers: workers, Backlog: workers})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(s.Handler())
		rep, err := loadtest.Run(loadtest.Config{
			BaseURL: ts.URL,
			Clients: clients,
			Jobs:    jobs,
			Stream:  stream,
		})
		ts.Close()
		s.Close()
		if err != nil {
			return nil, err
		}
		if lost := rep.Lost(); lost != 0 || rep.GaveUp > 0 || len(rep.Failures) > 0 {
			return nil, fmt.Errorf("serve throughput (stream=%v): contract violated: %v", stream, rep)
		}
		label := "sync"
		if stream {
			label = "stream"
		}
		jps.Labels = append(jps.Labels, label)
		jps.Values = append(jps.Values, rep.JobsPerSec)
		shed.Labels = append(shed.Labels, label)
		shed.Values = append(shed.Values, float64(rep.Rejected429))
	}
	f.Series = []Series{jps, shed}
	return f, nil
}
