package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"splitmem/internal/cluster"
	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

// clusterProbeSpin is the migration-latency probe: ~8M cycles, long enough
// that draining its host catches it mid-flight with checkpoints to ship.
const clusterProbeSpin = `
_start:
    mov ecx, 2700000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`

// clusterLongSpin keeps in-flight work on every replica during the rolling
// restart (~1.2M cycles).
const clusterLongSpin = `
_start:
    mov ecx, 400000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`

func clusterReplicaConfig() serve.Config {
	return serve.Config{Workers: 4, Backlog: 128, StreamSlice: 100_000, CheckpointCycles: 250_000}
}

func clusterGatewayConfig() cluster.Config {
	return cluster.Config{
		ProbeInterval: 25 * time.Millisecond,
		FailThreshold: 3,
		RetryBudget:   20,
		RetryBackoff:  10 * time.Millisecond,
		MaxRetryDelay: 250 * time.Millisecond,
	}
}

// ClusterFailover measures the sharded serve cluster: `clients` concurrent
// clients against three gateway-fronted replicas while every replica is
// restarted once, plus a single-job migration-latency probe. The run
// enforces the cluster contract — any acknowledged-then-lost job is an
// error, not a data point.
func ClusterFailover(clients, jobs int) (*Figure, error) {
	f := &Figure{
		Title:  fmt.Sprintf("Cluster failover: %d clients x %d jobs, 3 replicas, full rolling restart", clients, jobs),
		YLabel: "completed jobs / second; counts; milliseconds",
		Notes: []string{
			"every replica drained, killed, and restarted once while the load ran",
			"zero acknowledged-then-lost jobs (cluster contract; violation fails the bench)",
			"migration latency = wall-time overhead of a drain-triggered checkpoint migration vs an uninterrupted single-node run of the same job",
		},
	}

	latencyMS, err := clusterMigrationLatency()
	if err != nil {
		return nil, fmt.Errorf("migration latency probe: %w", err)
	}

	h, err := cluster.NewHarness(3, clusterReplicaConfig(), clusterGatewayConfig())
	if err != nil {
		return nil, err
	}
	defer h.Close()

	type loadDone struct {
		rep *loadtest.Report
		err error
	}
	lch := make(chan loadDone, 1)
	go func() {
		rep, err := loadtest.Run(loadtest.Config{
			BaseURL:    h.URL(),
			Clients:    clients,
			Jobs:       jobs,
			Stream:     true,
			Retry503:   true,
			MaxRetries: 500,
			RetryDelay: 10 * time.Millisecond,
			Body: func(c, j int) ([]byte, error) {
				if c%4 == 0 {
					return json.Marshal(map[string]any{
						"name":       fmt.Sprintf("bench-c%d-j%d", c, j),
						"source":     clusterLongSpin,
						"timeout_ms": 60000,
					})
				}
				return loadtest.DefaultJobBody(c, j)
			},
		})
		lch <- loadDone{rep, err}
	}()

	time.Sleep(200 * time.Millisecond)
	if err := h.RollingRestart(60 * time.Second); err != nil {
		return nil, fmt.Errorf("rolling restart: %w", err)
	}
	ld := <-lch
	if ld.err != nil {
		return nil, ld.err
	}
	rep := ld.rep
	if rep.Lost() != 0 || rep.GaveUp > 0 || len(rep.Failures) > 0 {
		return nil, fmt.Errorf("cluster contract violated: %v", rep)
	}

	f.Series = []Series{
		{Name: "jobs/s", Labels: []string{"rolling-restart"}, Values: []float64{rep.JobsPerSec}},
		{
			Name:   "jobs",
			Labels: []string{"completed", "migrated", "lost", "retried-503"},
			Values: []float64{float64(rep.Completed), float64(rep.Migrated), float64(rep.Lost()), float64(rep.Rejected503)},
		},
		{Name: "migration latency ms", Labels: []string{"checkpoint-resume"}, Values: []float64{latencyMS}},
	}
	return f, nil
}

// ClusterTracingOverhead measures what distributed tracing costs the
// cluster: the same steady-state load (no restarts, no faults) through a
// gateway-plus-three-replicas harness with host-span tracing on and off.
// With SPLITMEM_CLUSTER_TRACE_GUARD=1 in the environment the run fails
// unless traced throughput stays within 5% of untraced — the CI guard for
// the "tracing is effectively free" claim.
func ClusterTracingOverhead(clients, jobs int) (*Figure, error) {
	// Best-of-2 per arm, interleaved: host wall-clock throughput on a
	// shared machine is noisy, and the claim under test is the *tracing*
	// cost, not the scheduler's mood. Interleaving cancels slow drift;
	// taking each arm's best run discards one-off stalls.
	var off, on float64
	for trial := 0; trial < 2; trial++ {
		o, err := clusterThroughput(true, clients, jobs)
		if err != nil {
			return nil, fmt.Errorf("tracing off: %w", err)
		}
		off = max(off, o)
		n, err := clusterThroughput(false, clients, jobs)
		if err != nil {
			return nil, fmt.Errorf("tracing on: %w", err)
		}
		on = max(on, n)
	}
	ratio := on / off
	f := &Figure{
		Title:  fmt.Sprintf("Cluster tracing overhead: %d clients x %d jobs, 3 replicas, steady state", clients, jobs),
		YLabel: "completed jobs / second; ratio",
		Notes: []string{
			"identical load with host-span tracing disabled vs enabled (the default)",
			"guard: SPLITMEM_CLUSTER_TRACE_GUARD=1 fails the run if traced/untraced < 0.95",
		},
		Series: []Series{
			{Name: "jobs/s", Labels: []string{"tracing off", "tracing on"}, Values: []float64{off, on}},
			{Name: "traced/untraced", Labels: []string{"ratio"}, Values: []float64{ratio}},
		},
	}
	if os.Getenv("SPLITMEM_CLUSTER_TRACE_GUARD") == "1" && ratio < 0.95 {
		return nil, fmt.Errorf("tracing overhead guard: traced throughput %.1f jobs/s is %.1f%% of untraced %.1f jobs/s (floor 95%%)",
			on, 100*ratio, off)
	}
	return f, nil
}

// clusterThroughput runs one steady-state load through a fresh harness and
// reports its completed-jobs-per-second figure.
func clusterThroughput(noTracing bool, clients, jobs int) (float64, error) {
	rcfg := clusterReplicaConfig()
	rcfg.NoTracing = noTracing
	gcfg := clusterGatewayConfig()
	gcfg.NoTracing = noTracing
	h, err := cluster.NewHarness(3, rcfg, gcfg)
	if err != nil {
		return 0, err
	}
	defer h.Close()
	rep, err := loadtest.Run(loadtest.Config{
		BaseURL:    h.URL(),
		Clients:    clients,
		Jobs:       jobs,
		Stream:     true,
		Retry503:   true,
		MaxRetries: 500,
		RetryDelay: 10 * time.Millisecond,
		Body: func(c, j int) ([]byte, error) {
			if c%4 == 0 {
				return json.Marshal(map[string]any{
					"name":       fmt.Sprintf("trace-bench-c%d-j%d", c, j),
					"source":     clusterLongSpin,
					"timeout_ms": 60000,
				})
			}
			return loadtest.DefaultJobBody(c, j)
		},
	})
	if err != nil {
		return 0, err
	}
	if rep.Lost() != 0 || rep.GaveUp > 0 || len(rep.Failures) > 0 {
		return 0, fmt.Errorf("cluster contract violated: %v", rep)
	}
	return rep.JobsPerSec, nil
}

// clusterMigrationLatency times one job solo on a standalone replica, then
// the same job through the gateway with its host drained mid-run, and
// reports the wall-clock overhead of the live migration.
func clusterMigrationLatency() (float64, error) {
	body, err := json.Marshal(map[string]any{
		"name": "latency-probe", "source": clusterProbeSpin, "timeout_ms": 120000,
	})
	if err != nil {
		return 0, err
	}

	// Uninterrupted oracle run.
	solo, err := cluster.NewHarness(1, clusterReplicaConfig(), clusterGatewayConfig())
	if err != nil {
		return 0, err
	}
	soloStart := time.Now()
	if _, err := runClusterJob(solo, body, -1); err != nil {
		solo.Close()
		return 0, err
	}
	soloWall := time.Since(soloStart)
	solo.Close()

	// Same job, host drained mid-run: checkpoint export, CRC gate, resume.
	// A fast host can retire the probe before the drain lands; such runs
	// measured nothing, so the drained node is restarted and the probe rerun.
	h, err := cluster.NewHarness(3, clusterReplicaConfig(), clusterGatewayConfig())
	if err != nil {
		return 0, err
	}
	defer h.Close()
	var migWall time.Duration
	migrated := false
	for attempt := 0; attempt < 8 && !migrated; attempt++ {
		before := h.Gateway.Migrations()
		migStart := time.Now()
		drained, err := runClusterJob(h, body, 0)
		if err != nil {
			return 0, err
		}
		migWall = time.Since(migStart)
		migrated = h.Gateway.Migrations() > before
		if !migrated && drained >= 0 {
			if err := h.Nodes[drained].Restart(); err != nil {
				return 0, err
			}
		}
	}
	if !migrated {
		return 0, fmt.Errorf("probe job finished without migrating")
	}
	overhead := migWall - soloWall
	if overhead < 0 {
		overhead = 0
	}
	return float64(overhead.Milliseconds()), nil
}

// runClusterJob streams one job through a harness gateway and returns the
// index of the node it drained (-1 when none). When drainOwner is >= 0 it
// drains the job's host as soon as ownership is known, forcing a live
// migration.
func runClusterJob(h *cluster.Harness, body []byte, drainOwner int) (int, error) {
	drained := -1
	resp, err := http.Post(h.URL()+"/v1/jobs?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return drained, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return drained, fmt.Errorf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		return drained, err
	}
	var acc struct {
		Type string `json:"type"`
		ID   uint64 `json:"id"`
	}
	if err := json.Unmarshal([]byte(line), &acc); err != nil || acc.Type != "accepted" {
		return drained, fmt.Errorf("bad accepted line %q", line)
	}
	if drainOwner >= 0 {
		deadline := time.Now().Add(10 * time.Second)
		owner := -1
		for owner < 0 && time.Now().Before(deadline) {
			owner = h.Gateway.OwnerIndex(acc.ID)
			if owner < 0 {
				time.Sleep(2 * time.Millisecond)
			}
		}
		if owner < 0 {
			return drained, fmt.Errorf("job never got an owner")
		}
		h.Nodes[owner].Drain()
		drained = owner
	}
	var sawResult bool
	for {
		line, err := br.ReadString('\n')
		if len(bytes.TrimSpace([]byte(line))) > 0 {
			var frame struct {
				Type   string `json:"type"`
				Result *struct {
					Reason string `json:"reason"`
				} `json:"result"`
			}
			if jerr := json.Unmarshal([]byte(line), &frame); jerr == nil && frame.Type == "result" {
				sawResult = true
				if frame.Result == nil || frame.Result.Reason != "all-done" {
					return drained, fmt.Errorf("probe result %s", bytes.TrimSpace([]byte(line)))
				}
			}
		}
		if err != nil {
			break
		}
	}
	if !sawResult {
		return drained, fmt.Errorf("stream ended without a result")
	}
	return drained, nil
}
