// Package bench regenerates every table and figure of the paper's
// evaluation section (§6): Table 1 (benchmark attacks foiled), Table 2
// (real-world vulnerabilities), Table 3 (configuration), Fig. 5 (response
// modes), Fig. 6 (normalized application performance), Fig. 7 (context-
// switch stress), Fig. 8 (Apache vs. page size) and Fig. 9 (fractional
// splitting). Each experiment returns structured results plus a plain-text
// rendering comparable to the paper's presentation.
package bench

import (
	"fmt"
	"strings"
)

// Table is a generic text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Figure is a set of series with a caption.
type Figure struct {
	Title  string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the figure as a table of values plus ASCII bars (for
// single-series figures).
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "  %s:\n", s.Name)
		for i, v := range s.Values {
			label := ""
			if i < len(s.Labels) {
				label = s.Labels[i]
			}
			bar := strings.Repeat("#", int(v*40+0.5))
			fmt.Fprintf(&sb, "    %-14s %6.3f  %s\n", label, v, bar)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func check(v bool) string {
	if v {
		return "yes"
	}
	return "NO"
}
