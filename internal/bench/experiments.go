package bench

import (
	"fmt"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/cpu"
	"splitmem/internal/workloads"
)

// splitCfg is the stand-alone split-memory configuration used for the
// effectiveness tables (break mode, legacy hardware, no NX).
func splitCfg() splitmem.Config {
	return splitmem.Config{Protection: splitmem.ProtSplit, Response: splitmem.Break}
}

// Table1 reproduces "Benchmark attacks foiled when code is injected onto
// the data, bss, heap and stack segments".
func Table1() (*Table, error) {
	cells, err := attacks.RunExtendedWilander(splitCfg())
	if err != nil {
		return nil, err
	}
	byTech := map[attacks.Technique]map[attacks.Segment]attacks.CellResult{}
	var order []attacks.Technique
	for _, c := range cells {
		if byTech[c.Tech] == nil {
			byTech[c.Tech] = map[attacks.Segment]attacks.CellResult{}
			order = append(order, c.Tech)
		}
		byTech[c.Tech][c.Seg] = c
	}
	t := &Table{
		Title:  "Table 1: benchmark attacks foiled, by injection segment (split memory, break mode)",
		Header: []string{"Attack form", "data", "bss", "heap", "stack"},
	}
	foiled, total := 0, 0
	for _, tech := range order {
		row := []string{attacks.TechniqueName(tech)}
		for _, seg := range attacks.Segments() {
			c := byTech[tech][seg]
			switch {
			case c.NA:
				row = append(row, "N/A")
			case c.Result.Foiled():
				row = append(row, "foiled")
				foiled++
				total++
			default:
				row = append(row, "BREACHED")
				total++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d applicable attacks foiled; every cell verified to succeed on the unprotected machine first", foiled, total),
		"this grid implements 32 technique x segment forms, direct and indirect (the paper's benchmark exercised 20)")
	return t, nil
}

// Table2 reproduces "Five real-world vulnerabilities": exploit outcome on
// the unprotected system vs. under split memory.
func Table2() (*Table, error) {
	t := &Table{
		Title:  "Table 2: five real-world vulnerabilities",
		Header: []string{"Software", "Exploit", "Bug class", "Attack result", "Protected result"},
	}
	for _, sc := range attacks.Scenarios() {
		base, err := attacks.RunScenario(sc.Key, splitmem.Config{Protection: splitmem.ProtNone})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", sc.Key, err)
		}
		prot, err := attacks.RunScenario(sc.Key, splitCfg())
		if err != nil {
			return nil, fmt.Errorf("%s protected: %w", sc.Key, err)
		}
		t.Rows = append(t.Rows, []string{sc.Name, sc.Exploit, sc.Bug, base.String(), prot.String()})
		if base.Foiled() {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %s exploit failed even unprotected", sc.Key))
		}
		if prot.Succeeded() {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %s exploit succeeded under protection", sc.Key))
		}
	}
	return t, nil
}

// Table3 reproduces the configuration-information table.
func Table3() *Table {
	cost := cpu.PentiumIII600()
	return &Table{
		Title:  "Table 3: configuration used for the performance evaluation",
		Header: []string{"Item", "Value"},
		Rows: [][]string{
			{"Machine model", "S86 simulator, PIII-600-calibrated cost model"},
			{"Physical memory", "64 MiB"},
			{"ITLB / DTLB", "32 / 64 entries, fully associative, LRU"},
			{"Page size", "4 KiB"},
			{"Kernel", "internal/kernel, round-robin, 50k-cycle timeslice"},
			{"Split memory", "stand-alone mode (every page split), break response"},
			{"Cycle costs", fmt.Sprintf("instr=%d mem=%d walk=%d trap=%d pf=%d dbg=%d sys=%d ctxsw=%d io/B=%d",
				cost.Instr, cost.MemAccess, cost.TLBWalk, cost.Trap, cost.PFBase,
				cost.DebugTrap, cost.Syscall, cost.CtxSwitch, cost.IOByte)},
			{"Workloads", "httpd (4 workers), gzip 1MiB, nbench kernels, unixbench suite"},
		},
	}
}

// Fig5 runs the response-mode demonstrations against the wu-ftpd scenario.
func Fig5() (string, error) {
	var out string
	for _, mode := range []splitmem.ResponseMode{splitmem.Break, splitmem.Observe, splitmem.Forensics} {
		r, err := attacks.RunFig5(mode)
		if err != nil {
			return "", fmt.Errorf("fig5 %v: %w", mode, err)
		}
		out += attacks.RenderFig5(r) + "\n"
	}
	return out, nil
}

// normalizedPair runs a workload unprotected and under cfg and returns the
// normalized performance.
func normalizedPair(run func(splitmem.Config) (workloads.Metrics, error), cfg splitmem.Config) (float64, error) {
	base, err := run(splitmem.Config{Protection: splitmem.ProtNone})
	if err != nil {
		return 0, err
	}
	prot, err := run(cfg)
	if err != nil {
		return 0, err
	}
	return workloads.Normalized(base, prot), nil
}

// Fig6 reproduces "Normalized performance for applications and benchmarks":
// Apache (32 KiB pages), gzip, nbench, Unixbench, all relative to the
// unprotected system, split memory in stand-alone mode.
func Fig6() (*Figure, error) {
	cfg := splitCfg()
	httpd, err := normalizedPair(func(c splitmem.Config) (workloads.Metrics, error) {
		return workloads.RunHTTPD(c, 32*1024, 60)
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("httpd: %w", err)
	}
	gzip, err := normalizedPair(workloads.RunGzip, cfg)
	if err != nil {
		return nil, fmt.Errorf("gzip: %w", err)
	}
	nb, err := normalizedPair(workloads.RunNbench, cfg)
	if err != nil {
		return nil, fmt.Errorf("nbench: %w", err)
	}
	ub, _, err := workloads.UnixbenchScore(splitmem.Config{Protection: splitmem.ProtNone}, cfg)
	if err != nil {
		return nil, fmt.Errorf("unixbench: %w", err)
	}
	return &Figure{
		Title:  "Fig. 6: normalized performance for applications and benchmarks (stand-alone split memory)",
		YLabel: "normalized performance (unprotected = 1.0)",
		Series: []Series{{
			Name:   "split memory",
			Labels: []string{"apache-32K", "gzip", "nbench", "unixbench"},
			Values: []float64{httpd, gzip, nb, ub},
		}},
		Notes: []string{"paper: apache-32K=0.89, gzip=0.87, nbench=0.97(slowest test), unixbench=0.82"},
	}, nil
}

// Fig7 reproduces the context-switch stress tests: Unixbench pipe-based
// context switching and Apache serving 1 KiB pages.
func Fig7() (*Figure, error) {
	cfg := splitCfg()
	ctxsw, err := normalizedPair(func(c splitmem.Config) (workloads.Metrics, error) {
		return workloads.RunPipeCtxsw(c, 400)
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("pipe-ctxsw: %w", err)
	}
	httpd1k, err := normalizedPair(func(c splitmem.Config) (workloads.Metrics, error) {
		return workloads.RunHTTPD(c, 1024, 60)
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("httpd-1k: %w", err)
	}
	return &Figure{
		Title:  "Fig. 7: stress testing the context-switch penalty",
		YLabel: "normalized performance",
		Series: []Series{{
			Name:   "split memory",
			Labels: []string{"pipe-ctxsw", "apache-1K"},
			Values: []float64{ctxsw, httpd1k},
		}},
		Notes: []string{"paper: both at or below 0.50"},
	}, nil
}

// Fig8 reproduces the Apache page-size sweep: for larger pages the system
// spends its time on response generation and the NIC, so protected and
// unprotected converge.
func Fig8() (*Figure, error) {
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
	labels := []string{"1K", "4K", "16K", "32K", "64K", "128K", "256K", "512K"}
	cfg := splitCfg()
	var vals []float64
	for _, size := range sizes {
		reqs := 40
		if size >= 128<<10 {
			reqs = 12
		}
		sz := size
		v, err := normalizedPair(func(c splitmem.Config) (workloads.Metrics, error) {
			return workloads.RunHTTPD(c, sz, reqs)
		}, cfg)
		if err != nil {
			return nil, fmt.Errorf("httpd %d: %w", size, err)
		}
		vals = append(vals, v)
	}
	return &Figure{
		Title:  "Fig. 8: Apache throughput vs. served page size (split memory / unprotected)",
		YLabel: "normalized performance",
		Series: []Series{{Name: "split memory", Labels: labels, Values: vals}},
		Notes:  []string{"paper: poor at small page sizes (heavy context switching), approaching parity as I/O dominates"},
	}, nil
}

// Fig9 reproduces the fractional-splitting experiment on execute-disable
// hardware: the pipe-ctxsw working-set benchmark with only a percentage of
// pages split (the rest NX-protected), averaged over three page-selection
// seeds, on the modern quad-core cost model.
func Fig9() (*Figure, error) {
	fractions := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var labels []string
	var vals []float64
	base := splitmem.Config{Protection: splitmem.ProtNone, CostModel: cpu.ModernQuadCore()}
	baseM, err := workloads.RunPipeCtxswWS(base, 120)
	if err != nil {
		return nil, err
	}
	for _, f := range fractions {
		labels = append(labels, fmt.Sprintf("%d%%", int(f*100+0.5)))
		var sum float64
		seeds := []int64{1, 2, 3}
		for _, seed := range seeds {
			cfg := splitmem.Config{
				Protection:    splitmem.ProtSplitNX,
				SplitFraction: f,
				CostModel:     cpu.ModernQuadCore(),
				Seed:          seed,
			}
			if f == 0 {
				cfg.SplitFraction = 0.000001 // zero means "all"; force none
			}
			m, err := workloads.RunPipeCtxswWS(cfg, 120)
			if err != nil {
				return nil, fmt.Errorf("fraction %.1f: %w", f, err)
			}
			sum += workloads.Normalized(baseM, m)
		}
		vals = append(vals, sum/float64(len(seeds)))
	}
	return &Figure{
		Title:  "Fig. 9: Unixbench pipe-ctxsw with varying percentages of pages split (NX hardware)",
		YLabel: "normalized performance",
		Series: []Series{{Name: "split+NX", Labels: labels, Values: vals}},
		Notes:  []string{"paper: ~0.80 at 10% split, degrading toward the Fig. 7 floor as the percentage grows"},
	}, nil
}
