package trace

import (
	"strings"
	"testing"

	"splitmem/internal/isa"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("cap=%d len=%d", r.Cap(), r.Len())
	}
	r.Add(Entry{Cycles: 1, EIP: 0x10})
	r.Add(Entry{Cycles: 2, EIP: 0x20})
	if r.Len() != 2 {
		t.Fatalf("len=%d", r.Len())
	}
	es := r.Entries()
	if es[0].EIP != 0x10 || es[1].EIP != 0x20 {
		t.Fatalf("entries=%v", es)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Add(Entry{Cycles: i, EIP: uint32(i) * 0x10})
	}
	es := r.Entries()
	if len(es) != 3 {
		t.Fatalf("len=%d", len(es))
	}
	// Oldest first: 3, 4, 5.
	for i, want := range []uint64{3, 4, 5} {
		if es[i].Cycles != want {
			t.Fatalf("entry %d: cycles=%d want %d", i, es[i].Cycles, want)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Add(Entry{})
	r.Add(Entry{})
	r.Add(Entry{})
	r.Reset()
	if r.Len() != 0 || len(r.Entries()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRingMinCap(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap=%d", r.Cap())
	}
}

func TestRingString(t *testing.T) {
	r := NewRing(2)
	r.Add(Entry{Cycles: 7, EIP: 0x8048000, Instr: isa.Instr{Op: isa.OpNop, Size: 1}})
	out := r.String()
	if !strings.Contains(out, "08048000") || !strings.Contains(out, "nop") {
		t.Fatalf("out=%q", out)
	}
}
