package trace

import (
	"strings"
	"testing"

	"splitmem/internal/isa"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("cap=%d len=%d", r.Cap(), r.Len())
	}
	r.Add(Entry{Cycles: 1, EIP: 0x10})
	r.Add(Entry{Cycles: 2, EIP: 0x20})
	if r.Len() != 2 {
		t.Fatalf("len=%d", r.Len())
	}
	es := r.Entries()
	if es[0].EIP != 0x10 || es[1].EIP != 0x20 {
		t.Fatalf("entries=%v", es)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Add(Entry{Cycles: i, EIP: uint32(i) * 0x10})
	}
	es := r.Entries()
	if len(es) != 3 {
		t.Fatalf("len=%d", len(es))
	}
	// Oldest first: 3, 4, 5.
	for i, want := range []uint64{3, 4, 5} {
		if es[i].Cycles != want {
			t.Fatalf("entry %d: cycles=%d want %d", i, es[i].Cycles, want)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Add(Entry{})
	r.Add(Entry{})
	r.Add(Entry{})
	r.Reset()
	if r.Len() != 0 || len(r.Entries()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRingMinCap(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap=%d", r.Cap())
	}
}

func TestRingString(t *testing.T) {
	r := NewRing(2)
	r.Add(Entry{Cycles: 7, EIP: 0x8048000, Instr: isa.Instr{Op: isa.OpNop, Size: 1}})
	out := r.String()
	if !strings.Contains(out, "08048000") || !strings.Contains(out, "nop") {
		t.Fatalf("out=%q", out)
	}
}

func TestEntriesInto(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ { // wrap: keeps entries 2..5
		r.Add(Entry{Cycles: uint64(i), EIP: uint32(i)})
	}
	want := r.Entries()

	got := r.EntriesInto(nil)
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Reusing a scratch slice with capacity must not allocate.
	scratch := make([]Entry, 0, r.Cap())
	allocs := testing.AllocsPerRun(100, func() {
		scratch = r.EntriesInto(scratch[:0])
	})
	if allocs != 0 {
		t.Errorf("EntriesInto with capacity allocated %.0f times per run", allocs)
	}

	// Appending preserves any prefix already in dst.
	pre := []Entry{{Cycles: 99}}
	out := r.EntriesInto(pre)
	if len(out) != 1+len(want) || out[0].Cycles != 99 {
		t.Fatalf("prefix clobbered: %+v", out)
	}
}

func TestListing(t *testing.T) {
	entries := []Entry{
		{Cycles: 7, EIP: 0x8048000, Instr: isa.Instr{Op: isa.OpNop, Size: 1}},
		{Cycles: 8, EIP: 0x8048001, Instr: isa.Instr{Op: isa.OpNop, Size: 1}},
	}
	out := Listing(entries)
	if strings.Count(out, "\n") != 2 || !strings.Contains(out, "08048001") {
		t.Fatalf("out=%q", out)
	}
	if Listing(nil) != "" {
		t.Fatal("empty listing should be empty")
	}
}
