// Package trace provides a fixed-size execution-trace ring buffer for the
// S86 machine: the last N retired instructions with their addresses and
// cycle counts. The splitmem-run tool uses it for post-mortem listings of
// killed processes, and forensic tooling can attach it to enrich
// injection-detection reports with the instructions that led up to the
// hijack.
package trace

import (
	"fmt"
	"strings"

	"splitmem/internal/isa"
	"splitmem/internal/snapshot"
)

// Entry is one retired instruction.
type Entry struct {
	Cycles uint64
	EIP    uint32
	Instr  isa.Instr
}

// Ring is a fixed-capacity execution trace. The zero value is unusable;
// create one with NewRing.
type Ring struct {
	buf  []Entry
	pos  int
	full bool
}

// NewRing creates a ring holding the last n entries (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Entry, n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of recorded entries (up to Cap).
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.pos
}

// Add records one entry, evicting the oldest when full.
func (r *Ring) Add(e Entry) {
	r.buf[r.pos] = e
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
		r.full = true
	}
}

// Reset clears the ring.
func (r *Ring) Reset() {
	r.pos = 0
	r.full = false
}

// Entries returns the recorded entries, oldest first.
func (r *Ring) Entries() []Entry {
	if !r.full {
		out := make([]Entry, r.pos)
		copy(out, r.buf[:r.pos])
		return out
	}
	out := make([]Entry, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	out = append(out, r.buf[:r.pos]...)
	return out
}

// EntriesInto appends the recorded entries, oldest first, to dst and
// returns the extended slice. Unlike Entries it allocates only when dst
// lacks capacity, so repeat callers (the detection hot path) can reuse one
// scratch slice for the life of the ring.
func (r *Ring) EntriesInto(dst []Entry) []Entry {
	if !r.full {
		return append(dst, r.buf[:r.pos]...)
	}
	dst = append(dst, r.buf[r.pos:]...)
	return append(dst, r.buf[:r.pos]...)
}

// EncodeState serializes the ring positionally (buffer, cursor, wrap flag)
// so a restored ring renders byte-identical listings.
func (r *Ring) EncodeState(w *snapshot.Writer) {
	w.U32(uint32(len(r.buf)))
	w.Int(r.pos)
	w.Bool(r.full)
	for _, e := range r.buf {
		w.U64(e.Cycles)
		w.U32(e.EIP)
		w.U8(uint8(e.Instr.Op))
		w.U8(e.Instr.R1)
		w.U8(e.Instr.R2)
		w.U32(e.Instr.Imm)
		w.Int(e.Instr.Size)
	}
}

// DecodeState restores state serialized by EncodeState into a ring of the
// same capacity.
func (r *Ring) DecodeState(rd *snapshot.Reader) error {
	if n := rd.U32(); int(n) != len(r.buf) {
		return snapshot.Corruptf("trace: ring of %d entries, machine has %d", n, len(r.buf))
	}
	r.pos = rd.Int()
	r.full = rd.Bool()
	if r.pos < 0 || r.pos >= len(r.buf) {
		return snapshot.Corruptf("trace: cursor %d out of range", r.pos)
	}
	for i := range r.buf {
		e := &r.buf[i]
		e.Cycles = rd.U64()
		e.EIP = rd.U32()
		e.Instr.Op = isa.Op(rd.U8())
		e.Instr.R1 = rd.U8()
		e.Instr.R2 = rd.U8()
		e.Instr.Imm = rd.U32()
		e.Instr.Size = rd.Int()
	}
	return rd.Err()
}

// String renders the trace as a disassembly listing, oldest first.
func (r *Ring) String() string {
	return Listing(r.Entries())
}

// Listing renders entries as a disassembly listing, one instruction per
// line, oldest first.
func Listing(entries []Entry) string {
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "[%12d] %08x  %s\n", e.Cycles, e.EIP, e.Instr.DisasmAt(e.EIP))
	}
	return sb.String()
}
