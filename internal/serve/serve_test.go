package serve_test

// Integration tests for splitmem-serve, driven entirely through the public
// HTTP surface: submit (sync + stream), input rejection, per-job timeout,
// client-disconnect cancellation, queue-full backpressure, graceful drain,
// and the 64-client load contract. The whole file runs in the CI race lane.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

const exitSrc = `
_start:
    mov ebx, 7
    mov eax, 1          ; exit(7)
    int 0x80
`

const spinSrc = `
_start:
spin:
    jmp spin
`

// quickstart victim: read attacker bytes into a stack buffer, jump into it.
const victimSrc = `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, url string, body map[string]any) (*http.Response, error) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return http.Post(url, "application/json", strings.NewReader(string(b)))
}

func decodeResult(t *testing.T, r io.Reader) serve.JobResult {
	t.Helper()
	var res serve.JobResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSyncJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	resp, err := submit(t, ts.URL+"/v1/jobs", map[string]any{"name": "exit7", "source": exitSrc})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res := decodeResult(t, resp.Body)
	if res.Reason != "all-done" || !res.Exited || res.ExitStatus != 7 {
		t.Fatalf("result %+v", res)
	}
	if len(res.Events) == 0 {
		t.Fatal("sync result carries no events")
	}
	if res.Stats == nil || res.Stats.Instructions == 0 {
		t.Fatalf("missing stats: %+v", res.Stats)
	}
}

// streamLine is the decoded form of one NDJSON line.
type streamLine struct {
	Type  string `json:"type"`
	Event struct {
		Kind  string `json:"kind"`
		Trace string `json:"trace"`
	} `json:"event"`
	Result *serve.JobResult `json:"result"`
}

func readStream(t *testing.T, r io.Reader) []streamLine {
	t.Helper()
	var lines []streamLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestStreamDetection(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	resp, err := submit(t, ts.URL+"/v1/jobs?stream=1", map[string]any{
		"name":       "victim",
		"source":     victimSrc,
		"stdin_text": "\x90\x90\x90\x90",
		"config":     map[string]any{"trace_depth": 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	lines := readStream(t, resp.Body)
	if len(lines) < 3 || lines[0].Type != "accepted" {
		t.Fatalf("stream shape: %+v", lines)
	}
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil {
		t.Fatalf("stream does not end in a result line: %+v", last)
	}
	var detected bool
	for _, l := range lines[1 : len(lines)-1] {
		if l.Type != "event" {
			t.Fatalf("unexpected mid-stream line type %q", l.Type)
		}
		if l.Event.Kind == "injection-detected" {
			detected = true
			if l.Event.Trace == "" {
				t.Fatal("detection event streamed without its trace")
			}
		}
	}
	if !detected {
		t.Fatal("no injection-detected event in the stream")
	}
	if last.Result.ShellSpawned {
		t.Fatal("attack succeeded under split memory")
	}
	if last.Result.Detections == 0 {
		t.Fatalf("result reports no detections: %+v", last.Result)
	}
	if len(last.Result.Events) != 0 {
		t.Fatal("streamed result must not duplicate the event log")
	}
}

func TestRejections(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	url := ts.URL + "/v1/jobs"
	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"not-json", `{]`, 400, "bad-request"},
		{"unknown-field", `{"source": "x", "bogus": 1}`, 400, "bad-request"},
		{"no-program", `{"name": "x"}`, 400, "bad-request"},
		{"both-programs", `{"source": "x", "binary": "QUJD"}`, 400, "bad-request"},
		{"both-stdin", `{"source": "x", "stdin": "QUJD", "stdin_text": "hi"}`, 400, "bad-request"},
		{"trailing", `{"source": "x"} garbage`, 400, "bad-request"},
		{"neg-timeout", `{"source": "x", "timeout_ms": -1}`, 400, "bad-request"},
		{"bad-protection", `{"source": "x", "config": {"protection": "magic"}}`, 400, "bad-config"},
		{"bad-fraction", `{"source": "x", "config": {"split_fraction": 2.0}}`, 400, "bad-config"},
		{"bad-asm", "{\"source\": \"_start:\\n    frobnicate eax\\n\"}", 400, "bad-source"},
		{"bad-image", `{"binary": "RUxGIG5vdCBhIFNFTEY="}`, 400, "bad-image"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d want %d", resp.StatusCode, tc.status)
			}
			var e struct {
				Error string `json:"error"`
				Line  int    `json:"line"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Error != tc.kind {
				t.Fatalf("error kind %q want %q", e.Error, tc.kind)
			}
			if tc.name == "bad-asm" && e.Line != 2 {
				t.Fatalf("bad-asm line %d want 2", e.Line)
			}
		})
	}

	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})
	t.Run("too-large", func(t *testing.T) {
		huge := fmt.Sprintf(`{"source": %q}`, strings.Repeat("; pad\n", 3<<20))
		resp, err := http.Post(url, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	resp, err := submit(t, ts.URL+"/v1/jobs", map[string]any{
		"name": "spin", "source": spinSrc, "timeout_ms": 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res := decodeResult(t, resp.Body)
	if res.Reason != "timeout" || !res.TimedOut {
		t.Fatalf("result %+v", res)
	}
	if res.Cycles == 0 {
		t.Fatal("timed-out job reports zero simulated cycles")
	}
}

func TestClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"name": "spin", "source": ` + fmt.Sprintf("%q", spinSrc) + `, "timeout_ms": 30000}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?stream=1",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the accepted line so the job is definitely admitted, then
	// walk away mid-run.
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, `"accepted"`) {
		t.Fatalf("first line %q err %v", line, err)
	}
	cancel()
	resp.Body.Close()

	// The disconnect must release the worker long before the 30s wall
	// budget: the spin job can only end via cancellation.
	deadline := time.Now().Add(10 * time.Second)
	for s.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job still running %v after client disconnect", 10*time.Second)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metricValue(t, ts.URL, "splitmem_serve_jobs_canceled_total"); got != 1 {
		t.Fatalf("canceled_total=%v want 1", got)
	}
}

// metricValue scrapes one un-labeled metric from /metrics.
func metricValue(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exported", name)
	return 0
}

func TestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, Backlog: 1})
	spin := func(name string) map[string]any {
		return map[string]any{"name": name, "source": spinSrc, "timeout_ms": 10000}
	}

	// Occupy the worker, then the one backlog slot. j1 streams so its
	// accepted line proves admission; j2 retries 429s away in case j1 is
	// admitted but not yet picked up by the worker.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b1, _ := json.Marshal(spin("hog"))
	req1, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?stream=1",
		strings.NewReader(string(b1)))
	resp1, err := http.DefaultClient.Do(req1)
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	if line, err := bufio.NewReader(resp1.Body).ReadString('\n'); err != nil || !strings.Contains(line, `"accepted"`) {
		t.Fatalf("hog not accepted: %q %v", line, err)
	}

	b2, _ := json.Marshal(spin("queued"))
	var resp2 *http.Response
	for i := 0; ; i++ {
		req2, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?stream=1",
			strings.NewReader(string(b2)))
		resp2, err = http.DefaultClient.Do(req2)
		if err != nil {
			t.Fatal(err)
		}
		if resp2.StatusCode != http.StatusTooManyRequests {
			break
		}
		resp2.Body.Close()
		if i > 500 {
			t.Fatal("second job never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer resp2.Body.Close()

	// Worker busy + backlog full: the next submission must shed, fast,
	// with a Retry-After — never hang.
	start := time.Now()
	resp3, err := submit(t, ts.URL+"/v1/jobs", spin("shed"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v; backpressure must not block", d)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&e); err != nil || e.Error != "queue-full" {
		t.Fatalf("error body %+v (%v)", e, err)
	}
}

func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 1})

	// A job long enough to straddle the drain but cheap enough to finish
	// well inside its wall clock even under -race (~2M cycles).
	longSrc := `
_start:
    mov ecx, 700000
inner:
    sub ecx, 1
    cmp ecx, 0
    jnz inner
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	b, _ := json.Marshal(map[string]any{"name": "long", "source": longSrc, "timeout_ms": 30000})
	resp, err := http.Post(ts.URL+"/v1/jobs?stream=1", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, `"accepted"`) {
		t.Fatalf("not accepted: %q %v", line, err)
	}

	// Drain mid-run: new work is refused...
	s.BeginDrain()
	refused, err := submit(t, ts.URL+"/v1/jobs", map[string]any{"source": exitSrc})
	if err != nil {
		t.Fatal(err)
	}
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d want 503", refused.StatusCode)
	}

	// ...and healthz reports it...
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d want 503", h.StatusCode)
	}

	// ...but the in-flight stream still runs to its terminal line.
	var sawResult bool
	for {
		line, err := br.ReadString('\n')
		if strings.Contains(line, `"result"`) {
			sawResult = true
			var l streamLine
			if jerr := json.Unmarshal([]byte(line), &l); jerr != nil || l.Result == nil {
				t.Fatalf("bad result line %q: %v", line, jerr)
			}
			if l.Result.Reason != "all-done" || !l.Result.Exited {
				t.Fatalf("drained job result %+v", l.Result)
			}
		}
		if err != nil {
			break
		}
	}
	if !sawResult {
		t.Fatal("drain truncated the stream: no result line")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", h.StatusCode)
	}

	// Run one victim job, then the merged machine telemetry must show up
	// beside the service gauges.
	resp, err := submit(t, ts.URL+"/v1/jobs", map[string]any{
		"source": victimSrc, "stdin_text": "AAAA",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := metricValue(t, ts.URL, "splitmem_serve_jobs_completed_total"); got != 1 {
		t.Fatalf("completed_total=%v want 1", got)
	}
	if got := metricValue(t, ts.URL, "splitmem_split_detections_total"); got < 1 {
		t.Fatalf("merged machine detections=%v want >=1", got)
	}
}

// TestLoad64 is the acceptance-criteria load test: 64 concurrent clients
// against an 8-worker pool with a deliberately small backlog, so admission
// sheds real 429s while the contract (zero acknowledged-then-lost jobs,
// streams always terminated) holds. Runs under -race in CI.
func TestLoad64(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 8, Backlog: 8})
	for _, stream := range []bool{false, true} {
		rep, err := loadtest.Run(loadtest.Config{
			BaseURL: ts.URL,
			Clients: 64,
			Jobs:    2,
			Stream:  stream,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("stream=%v: %v", stream, rep)
		if rep.Lost() != 0 {
			t.Fatalf("stream=%v: %d acknowledged jobs lost", stream, rep.Lost())
		}
		if rep.GaveUp != 0 || len(rep.Failures) > 0 {
			t.Fatalf("stream=%v: gaveUp=%d failures=%v", stream, rep.GaveUp, rep.Failures)
		}
		if rep.Completed != 128 {
			t.Fatalf("stream=%v: completed=%d want 128", stream, rep.Completed)
		}
	}
}
