package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"splitmem"
	"splitmem/internal/telemetry/hostspan"
)

// job is one admitted unit of work: the compiled request plus its delivery
// plumbing. The worker goroutine owns the machine; the handler goroutine
// only waits on done.
type job struct {
	id       uint64
	req      *JobRequest
	cfg      splitmem.Config
	prog     *splitmem.Program
	ctx      context.Context // request context: client disconnect cancels it
	sink     eventSink       // nil for synchronous jobs
	resume   *journalJob     // non-nil for jobs replayed from the journal or resumed from a shipped checkpoint
	cursor   int             // event lines already delivered to the client (migration stitch point)
	migrated bool            // job arrived via /v1/jobs/resume (cluster migration)
	deadline time.Time       // propagated X-Splitmem-Deadline (zero = none)
	trace    string          // host-span trace ID ("" when tracing is off)
	enqueue  hostspan.SpanID // rep.enqueue-wait span, opened at admission
	result   JobResult
	done     chan struct{}
}

// eventSink receives kernel events as the run produces them. Emit errors
// are deliberately ignored by the runner: a broken client stream must not
// abort the simulation (the job still completes and is accounted for).
type eventSink interface {
	Event(ev splitmem.Event)
}

// Cancellation causes. The old implementation funneled the drain signal and
// the client disconnect into one bare cancel() on a shared context, so a
// SIGTERM racing a disconnect produced an arbitrary, indistinguishable
// "canceled" — now each source cancels with its own cause, the first one
// wins atomically, and the final frame names it.
var (
	errClientGone = errors.New("client disconnected")
	errDrained    = errors.New("server draining")
	errJobExpired = errors.New("job wall clock expired")
	errDeadline   = errors.New("propagated deadline expired")
	errMigrated   = errors.New("job detached for migration")
)

// supervision is the retry state threaded through a job's attempts: the most
// recent checkpoint (image + cycles already charged against the budget) and
// the event-stream cursor, which persists across attempts so a replayed
// prefix is never double-streamed to the client.
type supervision struct {
	img    []byte
	cycles uint64
	cursor int
}

// runJob executes one job to its terminal state under supervision: attempts
// that die (worker panic) or hang (slice watchdog) are retried from the last
// checkpoint with exponential backoff, until the retry budget is spent and
// the job fails with the typed "failed-after-retries" reason. poolCtx is the
// worker pool's lifetime context (canceled only on hard shutdown).
func (s *Server) runJob(poolCtx context.Context, j *job) {
	start := time.Now()
	s.rec.End(j.enqueue, "outcome", "run")
	res := &j.result
	res.ID = j.id
	res.Name = j.req.Name

	timeout := time.Duration(j.req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// The propagated deadline caps the wall budget: the client stops
	// waiting at that instant no matter what the job asked for.
	expireCause := errJobExpired
	if !j.deadline.IsZero() {
		if rem := time.Until(j.deadline); rem < timeout {
			timeout = rem
			expireCause = errDeadline
		}
	}
	if timeout < time.Millisecond {
		timeout = time.Millisecond
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(context.Canceled)
	stopClient := context.AfterFunc(j.ctx, func() { cancel(errClientGone) })
	defer stopClient()
	stopPool := context.AfterFunc(poolCtx, func() { cancel(errDrained) })
	defer stopPool()
	expire := time.AfterFunc(timeout, func() { cancel(expireCause) })
	defer expire.Stop()

	// Hook the run into the live registry so a gateway can detach it for
	// migration; a job detached while still queued stops before it starts.
	defer s.finishLive(j.id)
	if lj := s.lookupLive(j.id); lj != nil {
		if lj.attach(cancel) {
			cancel(errMigrated)
		}
	}

	sup := supervision{cursor: j.cursor}
	if j.resume != nil {
		sup.img, sup.cycles = j.resume.Checkpoint, j.resume.Cycles
		if !j.migrated {
			res.Recovered = true
		}
	}
	res.Migrated = j.migrated

	attempts := s.cfg.RetryBudget
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		runSpan := s.rec.Begin(j.trace, "rep.run",
			"job", strconv.FormatUint(j.id, 10), "attempt", strconv.Itoa(attempt))
		perr := s.runAttempt(ctx, j, &sup)
		if perr == nil {
			s.rec.End(runSpan, "reason", res.Reason)
			break // terminal result filled in
		}
		s.rec.End(runSpan, "error", perr.Error())
		if attempt >= attempts {
			res.Reason = "failed-after-retries"
			res.Error = perr.Error()
			res.Cycles = sup.cycles
			break
		}
		s.retries.Add(1)
		// Jittered exponential backoff: a worker-kill chaos storm (or a
		// genuinely sick host) restarts many attempts at once, and without
		// jitter they all re-land on the pool in the same instant.
		backoff := s.jitter.Scale(s.cfg.RetryBackoff << (attempt - 1))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			res.Cycles = sup.cycles
			finishCanceled(res, ctx)
		}
		if ctx.Err() != nil {
			break
		}
	}
	res.Wall = time.Since(start)
	s.rec.Instant(j.trace, "rep.result",
		"job", strconv.FormatUint(j.id, 10), "reason", res.Reason)
	if b, err := json.Marshal(res); err == nil {
		s.journal.logDone(j.id, b)
	}
}

// finishCanceled translates the cancellation cause into the result's
// terminal reason, keeping drain, disconnect, and timeout distinguishable.
func finishCanceled(res *JobResult, ctx context.Context) {
	switch context.Cause(ctx) {
	case errJobExpired:
		res.TimedOut = true
		res.Reason = "timeout"
	case errDeadline:
		res.TimedOut = true
		res.Reason = "deadline-exceeded"
	case errDrained:
		res.Canceled = true
		res.Reason = "drained"
	case errMigrated:
		// Detached for migration: a peer resumes from the shipped
		// checkpoint; this replica's stream ends with the typed frame the
		// gateway swallows.
		res.Canceled = true
		res.Reason = "migrated"
	default: // client disconnect (or its request context's own deadline)
		res.Canceled = true
		res.Reason = "canceled"
	}
}

// runAttempt runs the job from its latest checkpoint (or from scratch) to a
// terminal state, checkpointing as it goes. It returns nil when the job
// reached a terminal state — including cancellation and client-attributable
// load errors — and an error when the attempt died (panic) or hung
// (watchdog), in which case the supervisor decides whether to retry.
func (s *Server) runAttempt(ctx context.Context, j *job, sup *supervision) (err error) {
	res := &j.result
	defer func() {
		if r := recover(); r != nil {
			s.workerPanics.Add(1)
			err = fmt.Errorf("worker panic: %v", r)
		}
	}()

	budget := j.req.MaxCycles
	if budget == 0 {
		budget = s.cfg.DefaultMaxCycles
	}
	if budget > s.cfg.MaxCyclesCap {
		budget = s.cfg.MaxCyclesCap
	}

	// Build the machine: from the checkpoint image when one exists, from the
	// program otherwise. A checkpoint that fails to restore (torn journal
	// image adopted before the tear was detected) falls back to a fresh
	// start — losing progress, never the job.
	var (
		m    *splitmem.Machine
		p    *splitmem.Process
		used uint64
	)
	// Release the machine's reference on any shared template frames when the
	// attempt ends, whichever path built it (forked machines hold a refcount
	// on their template's frame store; Close is a no-op for cold boots).
	defer func() {
		if m != nil {
			m.Close()
		}
	}()
	if sup.img != nil {
		rspan := s.rec.Begin(j.trace, "rep.restore",
			"cycles", strconv.FormatUint(sup.cycles, 10), "bytes", strconv.Itoa(len(sup.img)))
		if rm, rerr := splitmem.Restore(sup.img); rerr == nil {
			m = rm
			used = sup.cycles
			s.restores.Add(1)
			s.rec.End(rspan)
		} else {
			sup.img, sup.cycles = nil, 0
			s.rec.End(rspan, "error", rerr.Error())
		}
	}
	if m == nil && s.warm != nil && j.ctx.Err() == nil {
		// Warm path: fork a machine off the job class's template image —
		// bit-identical to the cold boot below, minus the assemble/load/boot
		// cost. Any failure inside warmFork leaves m nil and the cold path
		// reproduces (and correctly attributes) the error.
		if wm, wp := s.warmFork(j); wm != nil {
			m, p = wm, wp
			if in := j.req.InputBytes(); len(in) > 0 {
				p.StdinWrite(in)
			}
			if !j.req.KeepStdin {
				p.StdinClose()
			}
		}
	}
	if m == nil {
		nm, nerr := splitmem.New(j.cfg)
		if nerr != nil {
			// The config was validated at admission; reaching here is internal.
			res.Reason = "internal-error"
			res.Error = nerr.Error()
			return nil
		}
		np, lerr := nm.LoadProgram(j.prog, j.req.Name)
		if lerr != nil {
			// Structurally valid images can still be unloadable (e.g. exhaust
			// physical memory): the client's input, the client's error.
			res.Reason = "load-error"
			res.Error = lerr.Error()
			return nil
		}
		m, p = nm, np
		if in := j.req.InputBytes(); len(in) > 0 {
			p.StdinWrite(in)
		}
		if !j.req.KeepStdin {
			p.StdinClose()
		}
	} else {
		rp, ok := m.Kernel().Process(1)
		if !ok {
			return fmt.Errorf("checkpoint restored without its root process")
		}
		p = rp
	}

	// Slice loop: run at most StreamSlice cycles at a time, forwarding the
	// events each slice emitted (EventsSince — the incremental API exists
	// for exactly this poller) so streamed detections leave the server
	// within one slice of the simulated moment they happened. The cursor
	// outlives the attempt: a retried attempt re-simulates the stretch since
	// the checkpoint, and pump skips everything already on the wire.
	pump := func() {
		if j.sink == nil {
			sup.cursor = m.EventSeq()
			return
		}
		if m.EventSeq() <= sup.cursor {
			return // replaying an already-streamed prefix
		}
		for _, ev := range m.EventsSince(sup.cursor) {
			j.sink.Event(ev)
		}
		sup.cursor = m.EventSeq()
	}

	var final splitmem.RunResult
	lastCkpt := used
	for {
		slice := s.cfg.StreamSlice
		if remaining := budget - used; slice > remaining {
			slice = remaining
		}
		sliceCtx := ctx
		var sliceCancel context.CancelFunc
		if s.cfg.WatchdogSlice > 0 {
			sliceCtx, sliceCancel = context.WithTimeout(ctx, s.cfg.WatchdogSlice)
		}
		sliceSpan := s.rec.Begin(j.trace, "rep.run-slice")
		final = m.RunContext(sliceCtx, slice)
		if sliceCancel != nil {
			sliceCancel()
		}
		used += final.Cycles
		s.rec.End(sliceSpan, "cycles", strconv.FormatUint(final.Cycles, 10))
		if s.hostChaos.KillWorker() {
			// Injected crash before this slice's events reach the wire: the
			// retry must replay and deliver them exactly once.
			panic("chaos: worker killed mid-slice")
		}
		pump()
		if final.Reason == splitmem.ReasonCanceled && ctx.Err() == nil {
			// Only the slice watchdog expired: the machine is hung (or the
			// slice is pathologically slow) but the job itself is still
			// wanted. Treat like a crash and retry from the checkpoint.
			return fmt.Errorf("watchdog: slice exceeded %v", s.cfg.WatchdogSlice)
		}
		if final.Reason != splitmem.ReasonBudget {
			break // all-done, deadlock, waiting-input, canceled, internal
		}
		if used >= budget {
			break // the job's own budget, not just a slice boundary
		}
		if ck := s.cfg.CheckpointCycles; ck > 0 && used-lastCkpt >= ck {
			ckSpan := s.rec.Begin(j.trace, "rep.checkpoint")
			if img, serr := m.Snapshot(); serr == nil {
				sup.img, sup.cycles = img, used
				lastCkpt = used
				s.checkpoints.Add(1)
				// The live registry gets the same image so a gateway can
				// ship it to a peer mid-run.
				s.liveCheckpoint(j.id, img, used)
				// A failed append costs durability, not correctness: the
				// in-memory image above still backs in-process retries.
				s.journal.logCheckpoint(j.id, used, img)
				s.rec.End(ckSpan,
					"bytes", strconv.Itoa(len(img)), "cycles", strconv.FormatUint(used, 10))
			} else {
				s.rec.End(ckSpan, "error", serr.Error())
			}
		}
	}

	res.Reason = final.Reason.String()
	res.Cycles = used
	if final.Reason == splitmem.ReasonCanceled {
		finishCanceled(res, ctx)
	}
	if final.Reason == splitmem.ReasonInternalError {
		res.Error = final.Panic
	}
	res.Exited, res.ExitStatus = p.Exited()
	var sig splitmem.Signal
	res.Killed, sig = p.Killed()
	if res.Killed {
		res.Signal = sig.String()
	}
	res.ShellSpawned = p.ShellSpawned()
	res.Detections = len(m.EventsOf(splitmem.EvInjectionDetected))
	res.EventCount = m.EventSeq()
	res.Stdout = string(p.StdoutDrain())
	if j.sink == nil {
		res.Events = m.Events()
	}
	st := m.Stats()
	res.Stats = &st

	// Fold the machine's metrics into the service aggregate. Registry.Merge
	// is the one goroutine-safe registry entry point; the server's mutex
	// additionally serializes merges against /metrics renders.
	s.mergeJobTelemetry(m.Telemetry())
	return nil
}
