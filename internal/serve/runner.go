package serve

import (
	"context"
	"time"

	"splitmem"
)

// job is one admitted unit of work: the compiled request plus its delivery
// plumbing. The worker goroutine owns the machine; the handler goroutine
// only waits on done.
type job struct {
	id     uint64
	req    *JobRequest
	cfg    splitmem.Config
	prog   *splitmem.Program
	ctx    context.Context // request context: client disconnect cancels it
	sink   eventSink       // nil for synchronous jobs
	result JobResult
	done   chan struct{}
}

// eventSink receives kernel events as the run produces them. Emit errors
// are deliberately ignored by the runner: a broken client stream must not
// abort the simulation (the job still completes and is accounted for).
type eventSink interface {
	Event(ev splitmem.Event)
}

// runJob executes one job to its terminal state. poolCtx is the worker
// pool's lifetime context (canceled only on hard shutdown); the effective
// context also honors the request context and the job's wall-clock budget.
func (s *Server) runJob(poolCtx context.Context, j *job) {
	start := time.Now()
	res := &j.result
	res.ID = j.id
	res.Name = j.req.Name

	timeout := time.Duration(j.req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	budget := j.req.MaxCycles
	if budget == 0 {
		budget = s.cfg.DefaultMaxCycles
	}
	if budget > s.cfg.MaxCyclesCap {
		budget = s.cfg.MaxCyclesCap
	}

	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(poolCtx, cancel)
	defer stop()

	m, err := splitmem.New(j.cfg)
	if err != nil {
		// The config was validated at admission; reaching here is internal.
		res.Reason = "internal-error"
		res.Error = err.Error()
		res.Wall = time.Since(start)
		return
	}
	p, err := m.LoadProgram(j.prog, j.req.Name)
	if err != nil {
		// Structurally valid images can still be unloadable (e.g. exhaust
		// physical memory): the client's input, the client's error.
		res.Reason = "load-error"
		res.Error = err.Error()
		res.Wall = time.Since(start)
		return
	}
	if in := j.req.InputBytes(); len(in) > 0 {
		p.StdinWrite(in)
	}
	if !j.req.KeepStdin {
		p.StdinClose()
	}

	// Slice loop: run at most StreamSlice cycles at a time, forwarding the
	// events each slice emitted (EventsSince — the incremental API exists
	// for exactly this poller) so streamed detections leave the server
	// within one slice of the simulated moment they happened.
	var (
		cursor int
		used   uint64
		final  splitmem.RunResult
	)
	pump := func() {
		if j.sink == nil {
			return
		}
		for _, ev := range m.EventsSince(cursor) {
			j.sink.Event(ev)
		}
		cursor = m.EventSeq()
	}
	for {
		slice := s.cfg.StreamSlice
		if remaining := budget - used; slice > remaining {
			slice = remaining
		}
		final = m.RunContext(ctx, slice)
		used += final.Cycles
		pump()
		if final.Reason != splitmem.ReasonBudget {
			break // all-done, deadlock, waiting-input, canceled, internal
		}
		if used >= budget {
			break // the job's own budget, not just a slice boundary
		}
	}

	res.Reason = final.Reason.String()
	res.Cycles = used
	if final.Reason == splitmem.ReasonCanceled {
		res.Canceled = true
		if ctx.Err() == context.DeadlineExceeded && j.ctx.Err() == nil {
			res.TimedOut = true
			res.Reason = "timeout"
		}
	}
	if final.Reason == splitmem.ReasonInternalError {
		res.Error = final.Panic
	}
	res.Exited, res.ExitStatus = p.Exited()
	var sig splitmem.Signal
	res.Killed, sig = p.Killed()
	if res.Killed {
		res.Signal = sig.String()
	}
	res.ShellSpawned = p.ShellSpawned()
	res.Detections = len(m.EventsOf(splitmem.EvInjectionDetected))
	res.EventCount = m.EventSeq()
	res.Stdout = string(p.StdoutDrain())
	if j.sink == nil {
		res.Events = m.Events()
	}
	st := m.Stats()
	res.Stats = &st
	res.Wall = time.Since(start)

	// Fold the machine's metrics into the service aggregate. Registry.Merge
	// is the one goroutine-safe registry entry point; the server's mutex
	// additionally serializes merges against /metrics renders.
	s.mergeJobTelemetry(m.Telemetry())
}
