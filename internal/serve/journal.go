package serve

// The crash-recovery journal: a bounded append-only file that makes the
// admission acknowledgment durable. Every record is CRC-framed and fsync'd
// before the client sees its "accepted" line, so a server crash can lose at
// most work, never an acknowledged job: on the next startup the journal is
// replayed, unfinished jobs are resubmitted, and each resumes from its most
// recent checkpoint image.
//
// On-disk format: a sequence of records, each
//
//	[u32 payload length][u32 CRC-32/IEEE of payload][payload]
//
// with all integers little-endian. The payload's first byte is the record
// kind (job submission, checkpoint, done); the rest is encoded with the
// snapshot codec. A torn tail — a partial frame or a CRC mismatch, the
// signature of a crash mid-write — ends the replay: everything before it is
// adopted, the file is truncated back to the last whole record, and the torn
// record is counted (surfaced on /healthz and /metrics). The journal is
// compacted in place once it outgrows its byte budget: finished jobs vanish,
// unfinished ones are rewritten as one submission plus their latest
// checkpoint.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"splitmem/internal/chaos"
	"splitmem/internal/snapshot"
)

const (
	recJob        = 1 // a job admitted: id + raw submission body
	recCheckpoint = 2 // a checkpoint: id + cycles consumed + snapshot image
	recDone       = 3 // a terminal result: id + result JSON

	// maxJournalRecord bounds a single record so a corrupt length field
	// cannot make replay attempt an absurd allocation.
	maxJournalRecord = 256 << 20
)

// journalJob is the replayable state of one journaled job.
type journalJob struct {
	ID         uint64
	Body       []byte // raw submission JSON (replayed through DecodeJob)
	Checkpoint []byte // latest snapshot image, nil before the first checkpoint
	Cycles     uint64 // simulated cycles consumed at that checkpoint
}

// journal is the on-disk job log. All methods are nil-receiver safe so the
// runner can call them unconditionally on a server with no journal
// configured.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64
	maxBytes int64
	torn     int    // torn/corrupt records detected (replay + in-process tears)
	maxSeen  uint64 // highest job id in any replayed record, live or done
	chaos    *chaos.HostInjector
	live     map[uint64]*journalJob // admitted, not yet done
}

// openJournal opens (or creates) the journal at path, replays it, truncates
// any torn tail, and positions for appending. inj, when non-nil, injects
// torn writes for the recovery chaos cells.
func openJournal(path string, maxBytes int64, inj *chaos.HostInjector) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f, path: path, maxBytes: maxBytes, chaos: inj, live: make(map[uint64]*journalJob)}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the file record by record, rebuilding the live-job table and
// truncating at the first torn or corrupt frame.
func (j *journal) replay() error {
	var off int64
	var hdr [8]byte
	for {
		n, err := io.ReadFull(j.f, hdr[:])
		if err != nil {
			if n > 0 {
				j.torn++ // partial header: crash mid-frame
			}
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxJournalRecord {
			j.torn++
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			j.torn++ // partial payload: crash mid-write
			break
		}
		if snapshot.Checksum(payload) != crc {
			j.torn++ // bits changed under us: stop trusting the rest
			break
		}
		j.apply(payload)
		off += 8 + int64(length)
	}
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	j.size = off
	return nil
}

// apply folds one valid record into the live-job table. Records for unknown
// jobs (a checkpoint whose submission fell past a torn tail) are dropped:
// without the submission body the job cannot be replayed anyway.
func (j *journal) apply(payload []byte) {
	r := snapshot.NewReader(payload)
	kind := r.U8()
	id := r.U64()
	if id > j.maxSeen {
		j.maxSeen = id
	}
	switch kind {
	case recJob:
		body := r.Bytes32()
		if r.Err() != nil {
			j.torn++
			return
		}
		j.live[id] = &journalJob{ID: id, Body: body}
	case recCheckpoint:
		cycles := r.U64()
		img := r.Bytes32()
		if r.Err() != nil {
			j.torn++
			return
		}
		if jj, ok := j.live[id]; ok {
			jj.Checkpoint, jj.Cycles = img, cycles
		}
	case recDone:
		r.Bytes32() // result JSON: recorded for the audit trail, not replayed
		if r.Err() != nil {
			j.torn++
			return
		}
		delete(j.live, id)
	default:
		j.torn++ // unknown kind: same trust boundary as a bad CRC
	}
}

// append frames, writes, and fsyncs one record, compacting first when the
// file has outgrown its budget. When the chaos injector fires, the write is
// deliberately torn — a partial frame with no fsync, exactly what a crash
// mid-write leaves behind — and an error is returned so the caller knows the
// record is not durable.
func (j *journal) append(payload []byte) error {
	if j.size > j.maxBytes {
		if err := j.compact(); err != nil {
			return err
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], snapshot.Checksum(payload))
	if j.chaos.TearJournal() {
		torn := append(hdr[:], payload[:len(payload)/2]...)
		j.f.Write(torn)
		j.size += int64(len(torn))
		j.torn++
		return fmt.Errorf("journal: torn write injected")
	}
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size += 8 + int64(len(payload))
	return nil
}

// compact rewrites the journal to its minimal form — one submission record
// (plus latest checkpoint) per unfinished job — through a temp file and an
// atomic rename, so a crash mid-compaction leaves either the old journal or
// the new one, never a hybrid.
func (j *journal) compact() error {
	tmp, err := os.OpenFile(j.path+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(j.live))
	for id := range j.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var size int64
	writeRec := func(payload []byte) error {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], snapshot.Checksum(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			return err
		}
		size += 8 + int64(len(payload))
		return nil
	}
	for _, id := range ids {
		jj := j.live[id]
		if err := writeRec(encodeJobRecord(jj.ID, jj.Body)); err != nil {
			tmp.Close()
			return err
		}
		if jj.Checkpoint != nil {
			if err := writeRec(encodeCheckpointRecord(jj.ID, jj.Cycles, jj.Checkpoint)); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(j.path+".tmp", j.path); err != nil {
		tmp.Close()
		return err
	}
	// The renamed fd IS the new journal; the old fd points at an unlinked
	// inode and just needs closing.
	j.f.Close()
	j.f = tmp
	j.size = size
	return nil
}

func encodeJobRecord(id uint64, body []byte) []byte {
	w := snapshot.NewWriter()
	w.U8(recJob)
	w.U64(id)
	w.Bytes32(body)
	return w.Bytes()
}

func encodeCheckpointRecord(id, cycles uint64, img []byte) []byte {
	w := snapshot.NewWriter()
	w.U8(recCheckpoint)
	w.U64(id)
	w.U64(cycles)
	w.Bytes32(img)
	return w.Bytes()
}

func encodeDoneRecord(id uint64, result []byte) []byte {
	w := snapshot.NewWriter()
	w.U8(recDone)
	w.U64(id)
	w.Bytes32(result)
	return w.Bytes()
}

// logJob records an admission. Must be durable before the client sees its
// acknowledgment — this is the write that makes "accepted" mean something.
func (j *journal) logJob(id uint64, body []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(encodeJobRecord(id, body)); err != nil {
		return err
	}
	j.live[id] = &journalJob{ID: id, Body: body}
	return nil
}

// logCheckpoint records a checkpoint image. A failed (or torn) append is
// reported but not fatal: the in-memory supervisor still holds the image,
// only durability across a full server crash regresses to the previous
// checkpoint.
func (j *journal) logCheckpoint(id, cycles uint64, img []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(encodeCheckpointRecord(id, cycles, img)); err != nil {
		return err
	}
	if jj, ok := j.live[id]; ok {
		jj.Checkpoint, jj.Cycles = img, cycles
	}
	return nil
}

// logDone records a terminal result and retires the job from replay.
func (j *journal) logDone(id uint64, result []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(encodeDoneRecord(id, result)); err != nil {
		return err
	}
	delete(j.live, id)
	return nil
}

// unfinished returns the replayable jobs (admitted, never marked done) in
// admission order.
func (j *journal) unfinished() []*journalJob {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*journalJob, 0, len(j.live))
	for _, jj := range j.live {
		out = append(out, jj)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// maxID returns the highest job id the journal has seen (live or done), so
// a restarted server's id counter never collides with journaled history.
func (j *journal) maxID() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeen
}

// tornRecords reports torn/corrupt records seen so far.
func (j *journal) tornRecords() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
