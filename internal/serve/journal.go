package serve

// The crash-recovery journal: a bounded append-only file that makes the
// admission acknowledgment durable. Every record is CRC-framed and fsync'd
// before the client sees its "accepted" line, so a server crash can lose at
// most work, never an acknowledged job: on the next startup the journal is
// replayed, unfinished jobs are resubmitted, and each resumes from its most
// recent checkpoint image.
//
// On-disk format: a sequence of records, each
//
//	[u32 payload length][u32 CRC-32/IEEE of payload][payload]
//
// with all integers little-endian. The payload's first byte is the record
// kind (job submission, checkpoint, done); the rest is encoded with the
// snapshot codec. A torn *tail* — a partial frame or a CRC mismatch at the
// very end of the file, the signature of a crash mid-write — ends the
// replay: everything before it is adopted, the file is truncated back to
// the last whole record, and the torn record is counted (surfaced on
// /healthz and /metrics). A CRC-failing record with data *after* it is a
// different animal — mid-file corruption of a record that was once durable
// — and fails the open loudly with ErrJournalCorrupt rather than silently
// dropping the valid suffix. The journal is compacted in place once it
// outgrows its byte budget: finished jobs vanish, unfinished ones are
// rewritten as one submission plus their latest checkpoint.
//
// Persistent write failures (a full disk, a dying device — injectable via
// DiskFaultInjector) degrade the journal to a documented in-memory mode:
// admission keeps working from the live table, /healthz flips to degraded,
// and a periodic compact-rewrite restores durability the moment writes
// succeed again. See persist.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"splitmem/internal/chaos"
	"splitmem/internal/snapshot"
)

// DiskFaultInjector injects storage-level faults into the journal's write,
// sync, and replay paths. It is an interface (implemented by
// internal/faultmesh.DiskFaults) so this package never imports the fault
// mesh — the mesh imports serve, not the other way around. All methods are
// consulted under the journal lock.
type DiskFaultInjector interface {
	// BeforeWrite is consulted once per file write of n bytes. It returns
	// how many bytes may reach the file; when fewer than n, err is the
	// error the write must report (a short write or ENOSPC).
	BeforeWrite(n int) (allow int, err error)
	// BeforeSync is consulted once per fsync; non-nil means the fsync
	// failed and the data's durability is unknown.
	BeforeSync() error
	// OnRead may corrupt a replayed record's payload in place (bit rot);
	// it returns true if it did.
	OnRead(p []byte) bool
}

// ErrJournalCorrupt is returned by openJournal when replay meets a
// CRC-failing record with more data after it. A bad frame at the exact end
// of the file is a torn tail — the signature of a crash mid-write — and is
// safely truncated; a bad frame in the middle means bits changed under a
// record that was once durable, and silently dropping the valid suffix
// would un-acknowledge jobs. That must fail loudly and leave the file
// untouched for forensics.
var ErrJournalCorrupt = errors.New("journal: corrupt record mid-file")

// errTornWrite marks a chaos-injected torn write: a simulated crash
// mid-append, not a persistent disk failure. It is excluded from the
// degradation counter — a full disk keeps failing, a crash window doesn't.
var errTornWrite = errors.New("journal: torn write injected")

// errJournalDegraded is returned while the journal is in in-memory mode
// and the next recovery attempt is not yet due.
var errJournalDegraded = errors.New("journal: degraded to in-memory mode (writes failing)")

const (
	// journalDegradeThreshold is how many consecutive append failures flip
	// the journal into degraded in-memory mode.
	journalDegradeThreshold = 3
	// defaultJournalRecoveryInterval is how often a degraded journal
	// retries a full rewrite from the live table.
	defaultJournalRecoveryInterval = 100 * time.Millisecond
)

const (
	recJob        = 1 // a job admitted: id + raw submission body
	recCheckpoint = 2 // a checkpoint: id + cycles consumed + snapshot image
	recDone       = 3 // a terminal result: id + result JSON

	// maxJournalRecord bounds a single record so a corrupt length field
	// cannot make replay attempt an absurd allocation.
	maxJournalRecord = 256 << 20
)

// journalJob is the replayable state of one journaled job.
type journalJob struct {
	ID         uint64
	Body       []byte // raw submission JSON (replayed through DecodeJob)
	Checkpoint []byte // latest snapshot image, nil before the first checkpoint
	Cycles     uint64 // simulated cycles consumed at that checkpoint
}

// journal is the on-disk job log. All methods are nil-receiver safe so the
// runner can call them unconditionally on a server with no journal
// configured.
type journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	size      int64 // end offset of the last known-good record
	dirtyTail bool  // a failed append may have left partial bytes past size
	maxBytes  int64
	torn      int    // torn/corrupt records detected (replay + in-process tears)
	maxSeen   uint64 // highest job id in any replayed record, live or done
	chaos     *chaos.HostInjector
	faults    DiskFaultInjector
	live      map[uint64]*journalJob // admitted, not yet done

	// Degradation state: after journalDegradeThreshold consecutive append
	// failures the journal stops touching the disk and serves from the
	// live table alone (admission never wedges on a full disk); every
	// recoveryEvery it retries a full compact-rewrite, and the first one
	// that succeeds restores durability.
	degraded      bool
	degradedAt    time.Time     // start of the current degradation window
	degradedPrior time.Duration // sum of completed degradation windows
	consecFails   int
	lastRecovery  time.Time
	recoveries    uint64
	recoveryEvery time.Duration
	recovering    bool // background recovery loop running
	closed        bool
}

// openJournal opens (or creates) the journal at path, replays it, truncates
// any torn tail, and positions for appending. inj, when non-nil, injects
// torn writes for the recovery chaos cells; faults, when non-nil, injects
// disk-level faults (ENOSPC, short writes, fsync failures, read
// corruption) into every subsequent write and the replay itself.
func openJournal(path string, maxBytes int64, inj *chaos.HostInjector, faults DiskFaultInjector) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f, path: path, maxBytes: maxBytes, chaos: inj, faults: faults, live: make(map[uint64]*journalJob)}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the file record by record, rebuilding the live-job table
// and truncating at the first torn frame. A torn frame is only trusted as
// a crash artifact when it is the file's tail; a CRC-failing record with
// data after it is mid-file corruption and aborts the open with
// ErrJournalCorrupt — truncating there would silently un-acknowledge every
// job recorded after the bad frame.
func (j *journal) replay() error {
	fi, err := j.f.Stat()
	if err != nil {
		return err
	}
	fileSize := fi.Size()
	var off int64
	var hdr [8]byte
	for {
		n, err := io.ReadFull(j.f, hdr[:])
		if err != nil {
			if n > 0 {
				j.torn++ // partial header: crash mid-frame
			}
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxJournalRecord {
			j.torn++
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			j.torn++ // partial payload: crash mid-write
			break
		}
		if j.faults != nil {
			j.faults.OnRead(payload) // injected bit rot: the CRC must catch it
		}
		if snapshot.Checksum(payload) != crc {
			if end := off + 8 + int64(length); end < fileSize {
				return fmt.Errorf("journal: record at offset %d fails CRC with %d bytes following: %w",
					off, fileSize-end, ErrJournalCorrupt)
			}
			j.torn++ // bad frame at the tail: crash mid-write
			break
		}
		j.apply(payload)
		off += 8 + int64(length)
	}
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	j.size = off
	return nil
}

// apply folds one valid record into the live-job table. Records for unknown
// jobs (a checkpoint whose submission fell past a torn tail) are dropped:
// without the submission body the job cannot be replayed anyway.
func (j *journal) apply(payload []byte) {
	r := snapshot.NewReader(payload)
	kind := r.U8()
	id := r.U64()
	if id > j.maxSeen {
		j.maxSeen = id
	}
	switch kind {
	case recJob:
		body := r.Bytes32()
		if r.Err() != nil {
			j.torn++
			return
		}
		j.live[id] = &journalJob{ID: id, Body: body}
	case recCheckpoint:
		cycles := r.U64()
		img := r.Bytes32()
		if r.Err() != nil {
			j.torn++
			return
		}
		if jj, ok := j.live[id]; ok {
			jj.Checkpoint, jj.Cycles = img, cycles
		}
	case recDone:
		r.Bytes32() // result JSON: recorded for the audit trail, not replayed
		if r.Err() != nil {
			j.torn++
			return
		}
		delete(j.live, id)
	default:
		j.torn++ // unknown kind: same trust boundary as a bad CRC
	}
}

// write sends b to a file through the disk-fault layer: the injector
// decides how many bytes actually land (0 for ENOSPC, a prefix for a
// short write) and what error the caller sees.
func (j *journal) write(f *os.File, b []byte) error {
	allow, ferr := len(b), error(nil)
	if j.faults != nil {
		allow, ferr = j.faults.BeforeWrite(len(b))
		if allow > len(b) {
			allow = len(b)
		}
		if allow < 0 {
			allow = 0
		}
	}
	if allow > 0 {
		if _, werr := f.Write(b[:allow]); werr != nil {
			return werr
		}
	}
	return ferr
}

// sync fsyncs through the fault layer. An injected failure returns before
// the real fsync: the data may or may not be durable, and the journal must
// assume not.
func (j *journal) sync(f *os.File) error {
	if j.faults != nil {
		if err := j.faults.BeforeSync(); err != nil {
			return err
		}
	}
	return f.Sync()
}

// append frames, writes, and fsyncs one record, compacting first when the
// file has outgrown its budget. When the chaos injector fires, the write is
// deliberately torn — a partial frame with no fsync, exactly what a crash
// mid-write leaves behind — and an error is returned so the caller knows the
// record is not durable.
//
// A failed append marks the tail dirty instead of advancing size: the next
// append truncates back to the last good record before writing, so an
// in-process failure can never leave a bad frame *mid-file* (which replay
// would have to treat as corruption). Only a crash between the failure and
// the repair leaves the torn bytes behind — as a tail, where replay
// truncates them safely.
func (j *journal) append(payload []byte) error {
	if j.dirtyTail {
		if err := j.f.Truncate(j.size); err != nil {
			return err
		}
		if _, err := j.f.Seek(j.size, io.SeekStart); err != nil {
			return err
		}
		j.dirtyTail = false
	}
	if j.size > j.maxBytes {
		if err := j.compact(); err != nil {
			return err
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], snapshot.Checksum(payload))
	if j.chaos.TearJournal() {
		torn := append(hdr[:], payload[:len(payload)/2]...)
		j.f.Write(torn)
		j.dirtyTail = true
		j.torn++
		return errTornWrite
	}
	if err := j.write(j.f, hdr[:]); err != nil {
		j.dirtyTail = true
		return err
	}
	if err := j.write(j.f, payload); err != nil {
		j.dirtyTail = true
		return err
	}
	if err := j.sync(j.f); err != nil {
		j.dirtyTail = true // durability unknown: rewrite the frame next time
		return err
	}
	j.size += 8 + int64(len(payload))
	return nil
}

// compact rewrites the journal to its minimal form — one submission record
// (plus latest checkpoint) per unfinished job — through a temp file and an
// atomic rename, so a crash mid-compaction leaves either the old journal or
// the new one, never a hybrid.
func (j *journal) compact() error {
	tmp, err := os.OpenFile(j.path+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// A failed compaction leaves the old journal untouched; just drop the
	// half-written temp file.
	abort := func(err error) error {
		tmp.Close()
		os.Remove(j.path + ".tmp")
		return err
	}
	ids := make([]uint64, 0, len(j.live))
	for id := range j.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var size int64
	writeRec := func(payload []byte) error {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], snapshot.Checksum(payload))
		if err := j.write(tmp, hdr[:]); err != nil {
			return err
		}
		if err := j.write(tmp, payload); err != nil {
			return err
		}
		size += 8 + int64(len(payload))
		return nil
	}
	for _, id := range ids {
		jj := j.live[id]
		if err := writeRec(encodeJobRecord(jj.ID, jj.Body)); err != nil {
			return abort(err)
		}
		if jj.Checkpoint != nil {
			if err := writeRec(encodeCheckpointRecord(jj.ID, jj.Cycles, jj.Checkpoint)); err != nil {
				return abort(err)
			}
		}
	}
	if err := j.sync(tmp); err != nil {
		return abort(err)
	}
	if err := os.Rename(j.path+".tmp", j.path); err != nil {
		return abort(err)
	}
	// The renamed fd IS the new journal; the old fd points at an unlinked
	// inode and just needs closing.
	j.f.Close()
	j.f = tmp
	j.size = size
	j.dirtyTail = false
	return nil
}

func encodeJobRecord(id uint64, body []byte) []byte {
	w := snapshot.NewWriter()
	w.U8(recJob)
	w.U64(id)
	w.Bytes32(body)
	return w.Bytes()
}

func encodeCheckpointRecord(id, cycles uint64, img []byte) []byte {
	w := snapshot.NewWriter()
	w.U8(recCheckpoint)
	w.U64(id)
	w.U64(cycles)
	w.Bytes32(img)
	return w.Bytes()
}

func encodeDoneRecord(id uint64, result []byte) []byte {
	w := snapshot.NewWriter()
	w.U8(recDone)
	w.U64(id)
	w.Bytes32(result)
	return w.Bytes()
}

// persist tries to make one already-applied record durable, running the
// degradation state machine. In healthy mode it appends; after
// journalDegradeThreshold consecutive failures (injected torn writes
// excluded — those are crash simulations, not persistent disk faults) it
// flips to degraded in-memory mode. While degraded, at most once per
// recoveryEvery it attempts a full compact-rewrite from the live table —
// which, because every log* method updates the live table before calling
// persist, recovers every record accepted during the outage the moment the
// disk heals. Callers hold j.mu.
func (j *journal) persist(payload []byte) error {
	if j.degraded {
		every := j.recoveryEvery
		if every <= 0 {
			every = defaultJournalRecoveryInterval
		}
		if time.Since(j.lastRecovery) < every {
			return errJournalDegraded
		}
		j.lastRecovery = time.Now()
		if err := j.compact(); err != nil {
			return fmt.Errorf("%w: recovery rewrite failed: %v", errJournalDegraded, err)
		}
		j.markRecoveredLocked()
		return nil
	}
	err := j.append(payload)
	if err == nil {
		j.consecFails = 0
		return nil
	}
	if !errors.Is(err, errTornWrite) {
		j.consecFails++
		if j.consecFails >= journalDegradeThreshold {
			j.degraded = true
			j.degradedAt = time.Now()
			j.lastRecovery = j.degradedAt
			j.startRecoveryLoopLocked()
		}
	}
	return err
}

// markRecoveredLocked closes the degradation window after a successful
// compact-rewrite. Caller holds j.mu.
func (j *journal) markRecoveredLocked() {
	j.degradedPrior += time.Since(j.degradedAt)
	j.degraded = false
	j.consecFails = 0
	j.recoveries++
}

// startRecoveryLoopLocked launches the background recovery retry for the
// current degradation episode. Write-path recovery alone is not enough: a
// degraded journal on a replica that never admits another job would stay
// degraded forever. The loop exits as soon as durability is restored (by
// either path) or the journal closes. Caller holds j.mu.
func (j *journal) startRecoveryLoopLocked() {
	if j.recovering || j.closed {
		return
	}
	j.recovering = true
	every := j.recoveryEvery
	if every <= 0 {
		every = defaultJournalRecoveryInterval
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for range t.C {
			j.mu.Lock()
			if j.closed || !j.degraded {
				j.recovering = false
				j.mu.Unlock()
				return
			}
			if time.Since(j.lastRecovery) >= every {
				j.lastRecovery = time.Now()
				if err := j.compact(); err == nil {
					j.markRecoveredLocked()
				}
			}
			j.mu.Unlock()
		}
	}()
}

// logJob records an admission. Must be durable before the client sees its
// acknowledgment — this is the write that makes "accepted" mean something.
// The live table is updated before the disk is touched: in degraded mode
// the table is the journal, and the recovery rewrite replays it to disk.
func (j *journal) logJob(id uint64, body []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.live[id] = &journalJob{ID: id, Body: body}
	if id > j.maxSeen {
		j.maxSeen = id
	}
	return j.persist(encodeJobRecord(id, body))
}

// logCheckpoint records a checkpoint image. A failed (or torn) append is
// reported but not fatal: the in-memory supervisor still holds the image,
// only durability across a full server crash regresses to the previous
// checkpoint.
func (j *journal) logCheckpoint(id, cycles uint64, img []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if jj, ok := j.live[id]; ok {
		jj.Checkpoint, jj.Cycles = img, cycles
	}
	return j.persist(encodeCheckpointRecord(id, cycles, img))
}

// logDone records a terminal result and retires the job from replay.
func (j *journal) logDone(id uint64, result []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.live, id)
	return j.persist(encodeDoneRecord(id, result))
}

// isDegraded reports whether the journal is in in-memory mode.
func (j *journal) isDegraded() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// degradedSeconds reports the cumulative wall time spent degraded,
// including the current window if one is open.
func (j *journal) degradedSeconds() float64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	d := j.degradedPrior
	if j.degraded {
		d += time.Since(j.degradedAt)
	}
	return d.Seconds()
}

// recoveryCount reports how many times a degraded journal has restored
// durability.
func (j *journal) recoveryCount() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recoveries
}

// unfinished returns the replayable jobs (admitted, never marked done) in
// admission order.
func (j *journal) unfinished() []*journalJob {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*journalJob, 0, len(j.live))
	for _, jj := range j.live {
		out = append(out, jj)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// maxID returns the highest job id the journal has seen (live or done), so
// a restarted server's id counter never collides with journaled history.
func (j *journal) maxID() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeen
}

// tornRecords reports torn/corrupt records seen so far.
func (j *journal) tornRecords() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true // stops the background recovery loop at its next tick
	return j.f.Close()
}
