package serve_test

// Warm-pool integration tests: a job started by forking a template image
// must be indistinguishable — result, detections, events, stdout — from the
// same job cold-booted, and the warm counters must show the fork actually
// happened (this is an equivalence gate, not a smoke test: if the warm path
// silently fell back to cold boots, the fork counter assertions fail).

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"testing"

	"splitmem/internal/serve"
)

// warmShellcode is the quickstart exit shellcode, enough to trip detection.
var warmShellcode = []byte{0x90, 0x90, 0xCD, 0x80}

func submitVictim(t *testing.T, url string) serve.JobResult {
	t.Helper()
	resp, err := submit(t, url+"/v1/jobs", map[string]any{
		"name":   "warm-victim",
		"source": victimSrc,
		"stdin":  base64.StdEncoding.EncodeToString(warmShellcode),
		"config": map[string]any{"protection": "split"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	return decodeResult(t, resp.Body)
}

// comparable strips the per-run fields (id, wall clock) and the host-side
// memory-sharing stats (a forked machine legitimately reports shared frames
// and CoW copies where a cold boot reports none) and renders the rest as
// JSON for a byte-level comparison.
func comparable(t *testing.T, res serve.JobResult) string {
	t.Helper()
	res.ID = 0
	res.Wall = 0
	if res.Stats != nil {
		s := *res.Stats
		s.MemSharedFrames, s.MemPrivateFrames, s.MemCowCopies = 0, 0, 0
		res.Stats = &s
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWarmPoolMatchesCold runs the same detonation on a cold server and
// twice on a warm-pool server (miss builds the template, hit forks from it)
// and requires all three results identical modulo id/wall/memory-sharing.
func TestWarmPoolMatchesCold(t *testing.T) {
	_, coldTS := newTestServer(t, serve.Config{Workers: 2})
	warmS, warmTS := newTestServer(t, serve.Config{Workers: 2, WarmPool: true})

	cold := submitVictim(t, coldTS.URL)
	first := submitVictim(t, warmTS.URL)
	second := submitVictim(t, warmTS.URL)

	if cold.Detections == 0 || !cold.Killed {
		t.Fatalf("cold run did not detect the injection: %+v", cold)
	}
	coldJSON := comparable(t, cold)
	if got := comparable(t, first); got != coldJSON {
		t.Errorf("first warm run (template build) differs from cold:\n cold: %s\n warm: %s", coldJSON, got)
	}
	if got := comparable(t, second); got != coldJSON {
		t.Errorf("second warm run (template hit) differs from cold:\n cold: %s\n warm: %s", coldJSON, got)
	}

	if forks := metricValue(t, warmTS.URL, "splitmem_serve_forks_total"); forks < 2 {
		t.Errorf("forks_total=%v, want >=2 (both warm jobs should fork)", forks)
	}
	if hits := metricValue(t, warmTS.URL, "splitmem_serve_warm_hits_total"); hits < 1 {
		t.Errorf("warm_hits_total=%v, want >=1 (second job reuses the template)", hits)
	}
	if misses := metricValue(t, warmTS.URL, "splitmem_serve_warm_misses_total"); misses != 1 {
		t.Errorf("warm_misses_total=%v, want 1 (one template build)", misses)
	}
	if cold := metricValue(t, coldTS.URL, "splitmem_serve_forks_total"); cold != 0 {
		t.Errorf("cold server forked %v times with the warm pool disabled", cold)
	}
	_ = warmS

	// The healthz warm_pool block mirrors the counters.
	resp, err := http.Get(warmTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		WarmPool struct {
			Enabled   bool    `json:"enabled"`
			Templates int     `json:"templates"`
			Forks     float64 `json:"forks"`
		} `json:"warm_pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.WarmPool.Enabled || hz.WarmPool.Templates != 1 || hz.WarmPool.Forks < 2 {
		t.Errorf("healthz warm_pool=%+v, want enabled with 1 template and >=2 forks", hz.WarmPool)
	}
}

func TestWarmPoolStdinIsolation(t *testing.T) {
	// Two different stdin payloads against the same cached template must
	// produce their own outcomes (stdin is per-fork, never baked into the
	// template): one benign input that just crashes the victim, one
	// shellcode that trips detection.
	_, ts := newTestServer(t, serve.Config{Workers: 2, WarmPool: true})

	inj := submitVictim(t, ts.URL)
	if inj.Detections == 0 {
		t.Fatalf("shellcode fork saw no detection: %+v", inj)
	}

	resp, err := submit(t, ts.URL+"/v1/jobs", map[string]any{
		"name":   "warm-victim",
		"source": victimSrc,
		"stdin":  base64.StdEncoding.EncodeToString([]byte{0x00, 0x00, 0x00, 0x00}),
		"config": map[string]any{"protection": "split"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	benign := decodeResult(t, resp.Body)
	if benign.Detections != inj.Detections && benign.ShellSpawned {
		t.Fatalf("benign input spawned a shell: %+v", benign)
	}
	if forks := metricValue(t, ts.URL, "splitmem_serve_forks_total"); forks < 2 {
		t.Errorf("forks_total=%v, want >=2", forks)
	}
}
