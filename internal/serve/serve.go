package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"splitmem"
	"splitmem/internal/chaos"
	"splitmem/internal/fleet"
	"splitmem/internal/telemetry"
	"splitmem/internal/telemetry/hostspan"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	Workers int // concurrent simulation workers (default 8)
	Backlog int // admission queue beyond the running jobs (default 2 * Workers)

	DefaultMaxCycles uint64        // per-job simulated-cycle budget when the job names none (default 200M)
	MaxCyclesCap     uint64        // hard per-job cycle ceiling (default 4G)
	DefaultTimeout   time.Duration // per-job wall clock when the job names none (default 10s)
	MaxTimeout       time.Duration // hard per-job wall-clock ceiling (default 60s)

	MaxBodyBytes int64  // request body limit (default 8 MiB)
	StreamSlice  uint64 // cycles simulated between event flushes (default 2M)

	// Crash recovery. JournalPath enables the durable job journal: every
	// admission is fsync'd before it is acknowledged, and a restarted server
	// replays unfinished jobs from their last checkpoint. The supervisor
	// (retries, watchdog, checkpointing) runs regardless — without a journal
	// it just cannot survive a whole-process crash.
	JournalPath      string        // on-disk journal ("" = no durable recovery)
	JournalMaxBytes  int64         // journal size that triggers compaction (default 64 MiB)
	CheckpointCycles uint64        // simulated cycles between checkpoints (default 4 * StreamSlice)
	RetryBudget      int           // attempts per job before failed-after-retries (default 3)
	RetryBackoff     time.Duration // first retry delay, doubled per attempt (default 10ms)
	WatchdogSlice    time.Duration // wall-clock deadline for one stream slice (default 15s)

	// DiskFaults, when non-nil, injects storage faults (ENOSPC, short
	// writes, fsync failures, read corruption) into every journal write and
	// replay — the fault-mesh chaos campaigns plug in here.
	// JournalRecoveryInterval is how often a degraded journal retries the
	// rewrite that restores durability (default 100ms).
	DiskFaults              DiskFaultInjector
	JournalRecoveryInterval time.Duration

	// HostChaos injects host-level faults — worker kills mid-slice, torn
	// journal writes — for the recovery chaos cells. Zero rates disable it.
	HostChaos chaos.HostConfig

	// WarmPool enables snapshot-forked job starts: the first job of each
	// distinct (program, config) class builds a template image (machine
	// parked right after program load) and later jobs fork from it,
	// sharing every physical frame copy-on-write instead of re-assembling
	// and re-booting. Forked jobs are bit-identical to cold-booted ones;
	// any warm-path failure silently falls back to a cold boot.
	WarmPool     bool
	WarmPoolSize int // distinct templates cached (default 32)

	// Host-span tracing (wall-clock job lifecycle spans, distinct from the
	// simulated-cycle machine telemetry). On by default: every job gets a
	// trace ID — the gateway's X-Splitmem-Trace header when present, a
	// fresh one otherwise — and its admission, queue wait, run slices,
	// checkpoints, and migration detach/resume land in a bounded ring
	// served by GET /v1/traces/{id}.
	TraceSpanCap int  // span ring capacity (0 = hostspan.DefaultCap)
	NoTracing    bool // disable host-span tracing entirely
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Backlog <= 0 {
		c.Backlog = 2 * c.Workers
	}
	if c.DefaultMaxCycles == 0 {
		c.DefaultMaxCycles = 200_000_000
	}
	if c.MaxCyclesCap == 0 {
		c.MaxCyclesCap = 4_000_000_000
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.StreamSlice == 0 {
		c.StreamSlice = 2_000_000
	}
	if c.JournalMaxBytes == 0 {
		c.JournalMaxBytes = 64 << 20
	}
	if c.CheckpointCycles == 0 {
		c.CheckpointCycles = 4 * c.StreamSlice
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.WatchdogSlice == 0 {
		c.WatchdogSlice = 15 * time.Second
	}
	return c
}

// Server is the splitmem-serve HTTP service: a bounded fleet.Pool of
// simulation workers behind an admission queue, with NDJSON event
// streaming, Prometheus metrics, and graceful draining.
type Server struct {
	cfg  Config
	pool *fleet.Pool
	mux  *http.ServeMux

	// Instance identity: a fresh random ID per process so a cluster
	// gateway's prober can tell a restarted replica from a live one (the
	// URL stays the same; the instance ID does not) and trigger
	// journal-recovery accounting.
	instanceID string
	startTime  time.Time

	draining atomic.Bool
	nextID   atomic.Uint64

	// Service-level counters. Plain atomics read by GaugeFunc samplers at
	// export time — handler goroutines never touch the (single-threaded)
	// registry instruments directly.
	accepted         atomic.Uint64
	rejected         atomic.Uint64 // queue-full 429s
	refused          atomic.Uint64 // draining 503s
	badInput         atomic.Uint64 // 400s
	deadlineExceeded atomic.Uint64 // 504s: the propagated deadline passed before admission
	completed        atomic.Uint64
	canceled         atomic.Uint64
	timedOut         atomic.Uint64
	streamed         atomic.Uint64 // NDJSON event lines written

	// Supervision counters.
	checkpoints  atomic.Uint64 // checkpoint images written
	restores     atomic.Uint64 // attempts resumed from a checkpoint
	retries      atomic.Uint64 // attempts retried after a panic or hang
	workerPanics atomic.Uint64 // worker panics recovered by the supervisor
	recovered    atomic.Uint64 // journal-replayed jobs run to a terminal state
	recovering   atomic.Int64  // journal-replayed jobs not yet terminal

	// Migration counters.
	migratedOut atomic.Uint64 // jobs detached and shipped to a peer replica
	resumedIn   atomic.Uint64 // migration resumes accepted
	resumeDups  atomic.Uint64 // duplicate resume claims rejected (409)

	// Warm-pool state and counters. warm is nil unless Config.WarmPool.
	warm       *warmPool
	forks      atomic.Uint64 // jobs started by forking a template image
	warmHits   atomic.Uint64 // jobs that found their template already built
	warmMisses atomic.Uint64 // jobs that had to build (or rebuild) a template

	// Live-job registry: the latest checkpoint of every in-flight job, so
	// the cluster gateway can ship it to a peer (GET /v1/jobs/{id}/checkpoint).
	// Finished or detached jobs move to a small bounded export ring so a
	// gateway whose first fetch was corrupted in transit can refetch.
	liveMu      sync.Mutex
	live        map[uint64]*liveJob
	exports     map[uint64]*CheckpointExport
	exportOrder []uint64          // FIFO eviction for exports
	resumeKeys  map[string]uint64 // idempotency: migration key -> local job id

	journal   *journal            // nil when Config.JournalPath is empty
	hostChaos *chaos.HostInjector // nil unless Config.HostChaos has a live rate
	rec       *hostspan.Recorder  // nil when Config.NoTracing
	jitter    *chaos.Jitter       // desynchronizes the supervisor's retry backoff

	// serverReg holds the service gauges; jobs holds the merged per-job
	// machine registries. jobMu serializes job merges against /metrics
	// renders (Registry.Merge locks against other merges, not readers).
	serverReg *telemetry.Registry
	jobMu     sync.Mutex
	jobs      *telemetry.Registry
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool, err := fleet.NewPool(cfg.Workers, cfg.Backlog)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		pool:       pool,
		instanceID: newInstanceID(),
		startTime:  time.Now(),
		live:       make(map[uint64]*liveJob),
		exports:    make(map[uint64]*CheckpointExport),
		resumeKeys: make(map[string]uint64),
		serverReg:  telemetry.NewRegistry(),
		jobs:       telemetry.NewRegistry(),
	}
	if cfg.HostChaos.Enabled() {
		s.hostChaos = chaos.NewHost(cfg.HostChaos)
	}
	if cfg.WarmPool {
		s.warm = newWarmPool(cfg.WarmPoolSize)
	}
	if !cfg.NoTracing {
		s.rec = hostspan.NewRecorder("replica:"+s.instanceID, cfg.TraceSpanCap)
	}
	// The backoff jitter is seeded from the instance identity: every
	// replica restarts with a new phase, so a fleet that dies together
	// never retries together.
	s.jitter = chaos.NewJitter(instanceSeed(s.instanceID))
	if cfg.JournalPath != "" {
		jn, err := openJournal(cfg.JournalPath, cfg.JournalMaxBytes, s.hostChaos, cfg.DiskFaults)
		if err != nil {
			pool.Close()
			return nil, fmt.Errorf("serve: opening journal: %w", err)
		}
		jn.recoveryEvery = cfg.JournalRecoveryInterval
		s.journal = jn
		s.nextID.Store(jn.maxID())
		if pending := jn.unfinished(); len(pending) > 0 {
			s.recovering.Store(int64(len(pending)))
			go s.resumeJournal(pending)
		}
	}
	reg := func(name, help string, v *atomic.Uint64) {
		s.serverReg.GaugeFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	reg("splitmem_serve_jobs_accepted_total", "jobs admitted to the queue", &s.accepted)
	reg("splitmem_serve_jobs_rejected_total", "submissions rejected with 429 (queue full)", &s.rejected)
	reg("splitmem_serve_jobs_refused_total", "submissions refused with 503 (draining)", &s.refused)
	reg("splitmem_serve_jobs_bad_total", "submissions rejected with 400 (bad input)", &s.badInput)
	reg("splitmem_serve_deadline_exceeded_total", "submissions rejected with 504 (propagated deadline passed)", &s.deadlineExceeded)
	reg("splitmem_serve_jobs_completed_total", "jobs run to a terminal state", &s.completed)
	reg("splitmem_serve_jobs_canceled_total", "jobs ended by cancellation or disconnect", &s.canceled)
	reg("splitmem_serve_jobs_timeout_total", "jobs ended by their wall-clock limit", &s.timedOut)
	reg("splitmem_serve_stream_events_total", "NDJSON event lines written to clients", &s.streamed)
	reg("splitmem_serve_checkpoints_total", "checkpoint images written by the supervisor", &s.checkpoints)
	reg("splitmem_serve_restores_total", "job attempts resumed from a checkpoint", &s.restores)
	reg("splitmem_serve_retries_total", "job attempts retried after a panic or hang", &s.retries)
	reg("splitmem_serve_worker_panics_total", "worker panics recovered by the supervisor", &s.workerPanics)
	reg("splitmem_serve_jobs_recovered_total", "journal-replayed jobs run to a terminal state", &s.recovered)
	s.serverReg.GaugeFunc("splitmem_serve_jobs_recovering", "journal-replayed jobs not yet terminal",
		func() float64 { return float64(s.recovering.Load()) })
	s.serverReg.GaugeFunc("splitmem_serve_journal_torn_total", "torn or corrupt journal records detected",
		func() float64 { return float64(s.journal.tornRecords()) })
	s.serverReg.GaugeFunc("splitmem_serve_journal_degraded", "1 while the journal is in in-memory degraded mode",
		func() float64 {
			if s.journal.isDegraded() {
				return 1
			}
			return 0
		})
	s.serverReg.GaugeFunc("splitmem_serve_journal_degraded_seconds_total", "cumulative wall time the journal has spent degraded",
		func() float64 { return s.journal.degradedSeconds() })
	s.serverReg.GaugeFunc("splitmem_serve_journal_recoveries_total", "times a degraded journal restored durability",
		func() float64 { return float64(s.journal.recoveryCount()) })
	s.serverReg.GaugeFunc("splitmem_serve_pool_panics_total", "tasks that escaped the supervisor and died in the pool",
		func() float64 { return float64(s.pool.Panics()) })
	s.serverReg.GaugeFunc("splitmem_serve_queue_depth", "jobs admitted but not yet finished",
		func() float64 { return float64(s.pool.Depth()) })
	s.serverReg.GaugeFunc("splitmem_serve_workers", "size of the simulation worker pool",
		func() float64 { return float64(cfg.Workers) })

	reg("splitmem_serve_forks_total", "jobs started by forking a warm template image", &s.forks)
	reg("splitmem_serve_warm_hits_total", "jobs whose template image was already built", &s.warmHits)
	reg("splitmem_serve_warm_misses_total", "jobs that built a template image", &s.warmMisses)

	reg("splitmem_serve_jobs_migrated_out_total", "jobs detached and shipped to a peer replica", &s.migratedOut)
	reg("splitmem_serve_jobs_resumed_in_total", "migration resumes accepted", &s.resumedIn)
	reg("splitmem_serve_resume_duplicates_total", "duplicate resume claims rejected", &s.resumeDups)

	s.serverReg.GaugeFunc("splitmem_serve_hostspans_recorded_total", "host spans recorded into the trace ring",
		func() float64 { return float64(s.rec.Recorded()) })
	s.serverReg.GaugeFunc("splitmem_serve_hostspans_dropped_total", "host spans evicted from the trace ring",
		func() float64 { return float64(s.rec.Dropped()) })

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobsSubtree)
	mux.HandleFunc("/v1/traces/", s.handleTraces)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// DeadlineHeader carries a job's absolute deadline — unix milliseconds —
// end to end: client → gateway → every relay, migration resume, and
// checkpoint fetch. Any tier that sees the deadline already passed rejects
// with 504 deadline-exceeded instead of burning a worker on an answer
// nobody is waiting for; a replica admitting the job clamps its wall-clock
// budget to the time remaining.
const DeadlineHeader = "X-Splitmem-Deadline"

// ParseDeadline reads the deadline header. The zero time (and nil error)
// means no deadline was propagated.
func ParseDeadline(h http.Header) (time.Time, error) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, fmt.Errorf("bad %s header %q: want positive unix milliseconds", DeadlineHeader, v)
	}
	return time.UnixMilli(ms), nil
}

// checkDeadline parses and enforces the propagated deadline before
// admission. It writes the rejection itself and reports whether the
// request may proceed; a zero returned time means no deadline.
func (s *Server) checkDeadline(w http.ResponseWriter, r *http.Request) (time.Time, bool) {
	deadline, err := ParseDeadline(r.Header)
	if err != nil {
		s.badInput.Add(1)
		httpError(w, http.StatusBadRequest, "bad-deadline", err.Error(), nil)
		return time.Time{}, false
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		s.deadlineExceeded.Add(1)
		httpError(w, http.StatusGatewayTimeout, "deadline-exceeded",
			"job deadline passed before admission", nil)
		return time.Time{}, false
	}
	return deadline, true
}

// JournalDegraded reports whether the journal is in in-memory degraded
// mode (persistent disk faults; durability suspended until recovery).
func (s *Server) JournalDegraded() bool { return s.journal.isDegraded() }

// JournalRecoveries reports how many times a degraded journal has
// restored durability.
func (s *Server) JournalRecoveries() uint64 { return s.journal.recoveryCount() }

// instanceSeed hashes an instance ID into a jitter seed.
func instanceSeed(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// newInstanceID returns a fresh random identity for this server process.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock: uniqueness across restarts is what the
		// prober needs, not cryptographic strength.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// InstanceID returns this process's random instance identity (also reported
// on /healthz).
func (s *Server) InstanceID() string { return s.instanceID }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain stops admission: subsequent submissions get 503 + Retry-After
// while already-accepted jobs keep running. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether admission is stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server: admission stops, every accepted job runs to its
// terminal state (and its stream gets its terminal line), then the workers
// exit. Meant to be called after the HTTP listener has shut down — with
// net/http, Server.Shutdown already waits for in-flight handlers, each of
// which waits for its job, so Close returns quickly.
func (s *Server) Close() {
	s.BeginDrain()
	s.pool.Close()
	s.journal.close()
}

// CancelRunning cancels the pool's lifetime context: every running job stops
// within one scheduler timeslice with the "drained" reason in its terminal
// frame. The hard half of shutdown, for when the graceful drain's patience
// runs out; Close still waits for the (now canceled) jobs to finish.
func (s *Server) CancelRunning() { s.pool.Cancel() }

// Recovering reports journal-replayed jobs that have not yet reached a
// terminal state.
func (s *Server) Recovering() int64 { return s.recovering.Load() }

// resumeJournal re-runs jobs the previous process acknowledged but never
// finished. Each is decoded from its journaled submission body and resumed
// from its last checkpoint; one that no longer decodes (say the journal
// outlived a schema change) is retired with an error result rather than
// replayed forever. Submission respects the backlog: recovery competes with
// live traffic instead of stampeding past it.
func (s *Server) resumeJournal(pending []*journalJob) {
	for _, jj := range pending {
		req, err := DecodeJob(jj.Body)
		var cfg splitmem.Config
		var prog *splitmem.Program
		if err == nil {
			cfg, err = req.MachineConfig()
		}
		if err == nil {
			prog, err = req.Program()
		}
		if err != nil {
			res := JobResult{ID: jj.ID, Reason: "recovery-failed", Error: err.Error(), Recovered: true}
			if b, jerr := json.Marshal(&res); jerr == nil {
				s.journal.logDone(jj.ID, b)
			}
			s.recovering.Add(-1)
			continue
		}
		// Recovered jobs get a fresh trace: the pre-crash trace died with
		// the old ring, and the replay is a new causal episode anyway.
		var trace string
		if s.rec != nil {
			trace = hostspan.NewTraceID()
		}
		j := &job{
			id:     jj.ID,
			req:    req,
			cfg:    cfg,
			prog:   prog,
			ctx:    context.Background(), // the original client is long gone
			trace:  trace,
			resume: jj,
			done:   make(chan struct{}),
		}
		s.registerLive(j.id, req.Name, jj.Body, trace)
		s.rec.Instant(trace, "rep.admit", "job", strconv.FormatUint(j.id, 10), "recovered", "true")
		task := func(poolCtx context.Context) {
			defer close(j.done)
			s.runJob(poolCtx, j)
		}
		for !s.pool.TrySubmit(task) {
			if s.draining.Load() {
				// Shutdown before resubmission: the job stays in the journal
				// for the next incarnation. Not lost, just postponed.
				s.discardLive(j.id)
				s.recovering.Add(-1)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		go func(j *job) {
			<-j.done
			s.accountResult(&j.result)
			s.recovered.Add(1)
			s.recovering.Add(-1)
		}(j)
	}
}

// Depth reports jobs admitted but not yet finished.
func (s *Server) Depth() int { return s.pool.Depth() }

// Workers reports the effective worker-pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Backlog reports the effective admission-queue capacity.
func (s *Server) Backlog() int { return s.cfg.Backlog }

// mergeJobTelemetry folds one finished machine's metrics into the service
// aggregate.
func (s *Server) mergeJobTelemetry(hub *telemetry.Hub) {
	if hub == nil {
		return
	}
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs.Merge(hub.Registry())
}

// --- HTTP plumbing --------------------------------------------------------

// retryAfter derives the Retry-After value from the actual backlog — one
// unit of patience per queued-or-running job per worker — so every 429/503
// path gives the gateway (and any client) the same consistent backoff
// signal instead of a constant.
func (s *Server) retryAfter() string {
	return strconv.Itoa(1 + s.pool.Depth()/s.cfg.Workers)
}

// httpError writes a JSON error body. kind is the stable machine-readable
// discriminator documented in docs/SERVICE.md.
func httpError(w http.ResponseWriter, status int, kind, msg string, extra map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]any{"error": kind, "message": msg}
	for k, v := range extra {
		body[k] = v
	}
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	state := "ok"
	if s.recovering.Load() > 0 {
		state = "recovering" // serving, but journal replay is still in flight
	}
	if s.journal.isDegraded() {
		// Still 200: a degraded journal serves (that is the point), it just
		// is not durable. Routing tiers may deprioritize, not evict.
		state = "degraded"
	}
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	w.WriteHeader(status)
	s.liveMu.Lock()
	liveJobs := len(s.live)
	s.liveMu.Unlock()
	json.NewEncoder(w).Encode(map[string]any{
		"status":         state,
		"workers":        s.cfg.Workers,
		"backlog":        s.cfg.Backlog,
		"depth":          s.pool.Depth(),
		"build":          hostspan.Build(),
		"uptime_seconds": time.Since(s.startTime).Seconds(),
		// Per-replica identity: lets a cluster prober distinguish a
		// restarted replica (new instance id, same URL) from a live one.
		"instance": map[string]any{
			"id":         s.instanceID,
			"start_time": s.startTime.UTC().Format(time.RFC3339Nano),
			"uptime_ms":  time.Since(s.startTime).Milliseconds(),
		},
		"cluster": map[string]any{
			"live_jobs":         liveJobs,
			"migrated_out":      s.migratedOut.Load(),
			"resumed_in":        s.resumedIn.Load(),
			"resume_duplicates": s.resumeDups.Load(),
		},
		"recovery": map[string]any{
			"journal":                  s.journal != nil,
			"journal_degraded":         s.journal.isDegraded(),
			"journal_degraded_seconds": s.journal.degradedSeconds(),
			"journal_recoveries":       s.journal.recoveryCount(),
			"recovering":               s.recovering.Load(),
			"recovered":                s.recovered.Load(),
			"torn_records":             s.journal.tornRecords(),
			"worker_panics":            s.workerPanics.Load(),
			"retries":                  s.retries.Load(),
			"checkpoints":              s.checkpoints.Load(),
			"restores":                 s.restores.Load(),
		},
		"warm_pool": map[string]any{
			"enabled":     s.warm != nil,
			"templates":   s.warm.cachedTemplates(),
			"forks":       s.forks.Load(),
			"warm_hits":   s.warmHits.Load(),
			"warm_misses": s.warmMisses.Load(),
		},
		"tracing": map[string]any{
			"enabled":  s.rec != nil,
			"spans":    s.rec.Len(),
			"recorded": s.rec.Recorded(),
			"dropped":  s.rec.Dropped(),
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// Server gauges first, then the merged per-job machine metrics; the
	// mutex keeps the render from racing a worker's merge.
	if err := s.serverReg.WritePrometheus(w); err != nil {
		return
	}
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs.WritePrometheus(w)
}

// handleTraces serves GET /v1/traces/{id}: every host span this replica
// recorded under the given trace ID, as a JSON TraceDoc. The cluster
// gateway fans this out across replicas to assemble a migrated job's
// merged timeline.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method-not-allowed", "GET /v1/traces/{id}", nil)
		return
	}
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "tracing-disabled", "host-span tracing is disabled on this replica", nil)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusBadRequest, "bad-request", "expected /v1/traces/{id}", nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hostspan.NewTraceDoc(id, s.rec.SpansFor(id)).WriteJSON(w)
}

// wantsStream reports whether the client asked for NDJSON streaming.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" || r.URL.Query().Get("stream") == "true" {
		return true
	}
	return r.Header.Get("Accept") == "application/x-ndjson"
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST a job object", nil)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter())
		s.refused.Add(1)
		httpError(w, http.StatusServiceUnavailable, "draining", "server is draining; resubmit elsewhere", nil)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		s.badInput.Add(1)
		httpError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), nil)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.badInput.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, "too-large",
			fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes), nil)
		return
	}

	req, err := DecodeJob(body)
	var cfg splitmem.Config
	var prog *splitmem.Program
	if err == nil {
		cfg, err = req.MachineConfig()
	}
	if err == nil {
		prog, err = req.Program()
	}
	if err != nil {
		s.badInput.Add(1)
		var se *SubmitError
		if errors.As(err, &se) {
			extra := map[string]any{}
			if se.Line > 0 {
				extra["line"] = se.Line
			}
			httpError(w, http.StatusBadRequest, se.Kind, se.Err.Error(), extra)
		} else {
			httpError(w, http.StatusBadRequest, "bad-request", err.Error(), nil)
		}
		return
	}
	deadline, ok := s.checkDeadline(w, r)
	if !ok {
		return
	}

	// Trace identity: honor the gateway's X-Splitmem-Trace header so the
	// spans this replica records can be stitched to the gateway's; mint a
	// fresh ID for standalone submissions. Echoed back on the response so
	// direct clients learn their trace too.
	trace := r.Header.Get(hostspan.TraceHeader)
	if trace == "" && s.rec != nil {
		trace = hostspan.NewTraceID()
	}
	if trace != "" {
		w.Header().Set(hostspan.TraceHeader, trace)
	}

	j := &job{
		id:       s.nextID.Add(1),
		req:      req,
		cfg:      cfg,
		prog:     prog,
		ctx:      r.Context(),
		trace:    trace,
		deadline: deadline,
		done:     make(chan struct{}),
	}

	stream := wantsStream(r)
	var ndj *ndjsonWriter
	if stream {
		ndj = newNDJSONWriter(w, &s.streamed)
		j.sink = ndj
	}

	// Admission. The journal record lands (fsync'd) before TrySubmit so the
	// on-disk order is always submission-then-checkpoint, and before any
	// acknowledgment so a crash can never lose an acknowledged job.
	// TrySubmit never blocks: a full backlog is load the service must shed,
	// not hide in a growing queue.
	s.journal.logJob(j.id, body)
	s.registerLive(j.id, req.Name, body, trace)
	s.rec.Instant(trace, "rep.admit", "job", strconv.FormatUint(j.id, 10), "name", req.Name)
	j.enqueue = s.rec.Begin(trace, "rep.enqueue-wait", "job", strconv.FormatUint(j.id, 10))
	task := func(poolCtx context.Context) {
		defer close(j.done)
		s.runJob(poolCtx, j)
	}
	if !s.pool.TrySubmit(task) {
		s.discardLive(j.id)
		s.rec.End(j.enqueue, "outcome", "shed")
		// Retire the journal record: a shed job was never acknowledged, so
		// the next incarnation must not replay it.
		if res, err := json.Marshal(&JobResult{ID: j.id, Reason: "shed"}); err == nil {
			s.journal.logDone(j.id, res)
		}
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfter())
			s.refused.Add(1)
			httpError(w, http.StatusServiceUnavailable, "draining", "server is draining", nil)
			return
		}
		// Tell the client how long the backlog actually is, not a constant:
		// one unit of patience per queued-or-running job per worker, so a
		// deep queue pushes retries further out instead of stampeding back.
		w.Header().Set("Retry-After", s.retryAfter())
		s.rejected.Add(1)
		httpError(w, http.StatusTooManyRequests, "queue-full",
			"admission queue is full; retry after the indicated delay", nil)
		return
	}
	s.accepted.Add(1)

	if stream {
		// The accepted line is the admission acknowledgment: everything
		// after it is the job's own event stream, terminated by exactly one
		// result line — even when the server drains mid-run.
		accepted := map[string]any{"type": "accepted", "id": j.id, "name": req.Name}
		if trace != "" {
			accepted["trace"] = trace
		}
		ndj.Line(accepted)
		<-j.done
		s.accountResult(&j.result)
		ndj.Result(&j.result)
		return
	}

	<-j.done
	s.accountResult(&j.result)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&j.result)
}

// accountResult bumps the outcome counters for a finished job.
func (s *Server) accountResult(res *JobResult) {
	s.completed.Add(1)
	if res.Canceled {
		s.canceled.Add(1)
	}
	if res.TimedOut {
		s.timedOut.Add(1)
	}
}

// --- NDJSON streaming -----------------------------------------------------

// ndjsonWriter serializes stream lines to the client. Only the worker (and
// the handler before/after the worker owns the job) writes through it; the
// mutex makes the handoff safe regardless of flusher behavior.
type ndjsonWriter struct {
	mu      sync.Mutex
	w       io.Writer
	flush   http.Flusher
	lines   *atomic.Uint64
	started bool
}

func newNDJSONWriter(w http.ResponseWriter, lines *atomic.Uint64) *ndjsonWriter {
	n := &ndjsonWriter{w: w, lines: lines}
	if f, ok := w.(http.Flusher); ok {
		n.flush = f
	}
	return n
}

// Line writes one NDJSON object and flushes it to the client.
func (n *ndjsonWriter) Line(v any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		if hw, ok := n.w.(http.ResponseWriter); ok {
			hw.Header().Set("Content-Type", "application/x-ndjson")
			hw.Header().Set("Cache-Control", "no-store")
		}
		n.started = true
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	n.w.Write(b)
	io.WriteString(n.w, "\n")
	if n.flush != nil {
		n.flush.Flush()
	}
}

// Event implements eventSink: one line per kernel event, as it happens.
func (n *ndjsonWriter) Event(ev splitmem.Event) {
	n.Line(map[string]any{"type": "event", "event": ev})
	if n.lines != nil {
		n.lines.Add(1)
	}
}

// Result writes the terminal line of the stream.
func (n *ndjsonWriter) Result(res *JobResult) {
	n.Line(map[string]any{"type": "result", "result": res})
}
