package serve

// White-box tests for the crash-recovery journal: round-trip, torn-tail
// tolerance, compaction bounds, and injected torn writes.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"splitmem/internal/chaos"
	"splitmem/internal/snapshot"
)

func tempJournal(t *testing.T, maxBytes int64, inj *chaos.HostInjector) (*journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := openJournal(path, maxBytes, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := tempJournal(t, 1<<20, nil)
	body1 := []byte(`{"source": "one"}`)
	body2 := []byte(`{"source": "two"}`)
	img := []byte("pretend-snapshot-image")
	if err := j.logJob(1, body1); err != nil {
		t.Fatal(err)
	}
	if err := j.logJob(2, body2); err != nil {
		t.Fatal(err)
	}
	if err := j.logCheckpoint(1, 5000, img); err != nil {
		t.Fatal(err)
	}
	if err := j.logDone(2, []byte(`{"reason":"all-done"}`)); err != nil {
		t.Fatal(err)
	}
	j.close()

	j2, err := openJournal(path, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if j2.tornRecords() != 0 {
		t.Fatalf("clean journal reports %d torn records", j2.tornRecords())
	}
	if got := j2.maxID(); got != 2 {
		t.Fatalf("maxID=%d want 2", got)
	}
	un := j2.unfinished()
	if len(un) != 1 || un[0].ID != 1 {
		t.Fatalf("unfinished=%+v want exactly job 1", un)
	}
	if string(un[0].Body) != string(body1) || string(un[0].Checkpoint) != string(img) || un[0].Cycles != 5000 {
		t.Fatalf("job 1 replayed wrong: %+v", un[0])
	}
}

func TestJournalTornTail(t *testing.T) {
	j, path := tempJournal(t, 1<<20, nil)
	if err := j.logJob(1, []byte(`{"source": "x"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.logCheckpoint(1, 42, []byte("img")); err != nil {
		t.Fatal(err)
	}
	j.close()

	// Simulate a crash mid-write: a whole frame header but only part of the
	// payload it promises.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	f.Write(hdr[:])
	f.Write([]byte("only a few bytes"))
	f.Close()

	j2, err := openJournal(path, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.tornRecords() != 1 {
		t.Fatalf("torn=%d want 1", j2.tornRecords())
	}
	un := j2.unfinished()
	if len(un) != 1 || un[0].Cycles != 42 {
		t.Fatalf("records before the tear lost: %+v", un)
	}
	// The tail was truncated, so the journal must accept appends again and
	// replay cleanly on the next open.
	if err := j2.logDone(1, []byte(`{"reason":"all-done"}`)); err != nil {
		t.Fatal(err)
	}
	j2.close()
	j3, err := openJournal(path, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if j3.tornRecords() != 0 || len(j3.unfinished()) != 0 {
		t.Fatalf("post-truncation journal not clean: torn=%d unfinished=%d",
			j3.tornRecords(), len(j3.unfinished()))
	}
}

func TestJournalCorruptRecordStopsReplay(t *testing.T) {
	j, path := tempJournal(t, 1<<20, nil)
	j.logJob(1, []byte(`{"source": "x"}`))
	j.logJob(2, []byte(`{"source": "y"}`))
	j.close()

	// Flip one payload byte of the second record; its CRC must catch it and
	// replay must stop there, keeping the first record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := 8 + binary.LittleEndian.Uint32(raw[0:4])
	raw[first+8+4] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := openJournal(path, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if j2.tornRecords() != 1 {
		t.Fatalf("torn=%d want 1", j2.tornRecords())
	}
	un := j2.unfinished()
	if len(un) != 1 || un[0].ID != 1 {
		t.Fatalf("unfinished=%+v want only job 1", un)
	}
}

func TestJournalCompaction(t *testing.T) {
	const maxBytes = 8 << 10
	j, path := tempJournal(t, maxBytes, nil)
	if err := j.logJob(1, []byte(`{"source": "keep"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.logJob(2, []byte(`{"source": "finish"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.logDone(2, []byte(`{"reason":"all-done"}`)); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 1024)
	for i := 0; i < 64; i++ {
		img[0] = byte(i)
		if err := j.logCheckpoint(1, uint64(i+1)*1000, img); err != nil {
			t.Fatal(err)
		}
	}
	// 64 KiB of checkpoints went through an 8 KiB budget: compaction must
	// have kept the file bounded (budget + at most one oversized append).
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > maxBytes+2*1100 {
		t.Fatalf("journal grew to %d bytes despite %d budget", fi.Size(), maxBytes)
	}
	j.close()

	j2, err := openJournal(path, maxBytes, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	un := j2.unfinished()
	if len(un) != 1 || un[0].ID != 1 || un[0].Cycles != 64000 {
		t.Fatalf("compaction lost state: %+v", un)
	}
	if un[0].Checkpoint[0] != 63 {
		t.Fatal("compaction kept a stale checkpoint image")
	}
	if j2.maxID() < 1 {
		t.Fatalf("maxID=%d", j2.maxID())
	}
}

func TestJournalChaosTear(t *testing.T) {
	inj := chaos.NewHost(chaos.HostConfig{Seed: 1, JournalTear: 1})
	j, path := tempJournal(t, 1<<20, inj)
	if err := j.logJob(1, []byte(`{"source": "x"}`)); err == nil {
		t.Fatal("torn write injected but append reported success")
	}
	if j.tornRecords() == 0 {
		t.Fatal("injected tear not counted")
	}
	j.close()

	// The torn record is exactly what a crash mid-write leaves: the next
	// open detects it, truncates, and carries on.
	j2, err := openJournal(path, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if j2.tornRecords() != 1 {
		t.Fatalf("torn=%d want 1", j2.tornRecords())
	}
	if len(j2.unfinished()) != 0 {
		t.Fatal("torn record half-adopted")
	}
	if err := j2.logJob(2, []byte(`{"source": "y"}`)); err != nil {
		t.Fatal(err)
	}
}

// readDoneResults scans a journal file directly and returns the result JSON
// of every done record, keyed by job id — the audit-trail view a test uses
// to prove an acknowledged job's terminal result survived a restart.
func readDoneResults(t *testing.T, path string) map[uint64][]byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64][]byte)
	for off := 0; off+8 <= len(raw); {
		length := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		if off+8+length > len(raw) {
			break
		}
		payload := raw[off+8 : off+8+length]
		r := snapshot.NewReader(payload)
		if kind := r.U8(); kind == recDone {
			id := r.U64()
			out[id] = r.Bytes32()
		}
		off += 8 + length
	}
	return out
}
