// Package serve implements splitmem-serve: an HTTP detonation service that
// accepts simulation jobs (a SELF binary or S86 source plus a machine
// configuration), runs them on a bounded fleet.Pool worker pool, and
// returns — or streams, as NDJSON — the kernel events and detections the
// run produced. It is the operational form of the paper's observe and
// forensics modes: a honeypot pipeline POSTs suspected payloads and reads
// structured detections back.
//
// The service contract (endpoints, job schema, backpressure, draining) is
// documented in docs/SERVICE.md.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"splitmem"
	"splitmem/internal/guest"
	"splitmem/internal/loader"
)

// JobConfig is the wire form of the machine configuration, mirroring
// splitmem.Config field by field with JSON-friendly types. Zero values
// select the same defaults the library does.
type JobConfig struct {
	Protection string `json:"protection,omitempty"` // none | nx | split | split+nx (default split)
	Response   string `json:"response,omitempty"`   // break | observe | forensics | recovery (default break)

	SplitFraction     float64 `json:"split_fraction,omitempty"`
	MixedOnly         bool    `json:"mixed_only,omitempty"`
	ForensicShellcode []byte  `json:"forensic_shellcode,omitempty"` // base64
	SoftTLB           bool    `json:"soft_tlb,omitempty"`
	LazyTwins         bool    `json:"lazy_twins,omitempty"`

	ITLBSize  int `json:"itlb_size,omitempty"`
	DTLBSize  int `json:"dtlb_size,omitempty"`
	PhysBytes int `json:"phys_bytes,omitempty"`

	TraceDepth     int    `json:"trace_depth,omitempty"`
	Timeslice      uint64 `json:"timeslice,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	RandomizeStack bool   `json:"randomize_stack,omitempty"`
}

// ParseProtection maps the wire name to the library constant.
func ParseProtection(s string) (splitmem.Protection, error) {
	switch s {
	case "", "split":
		return splitmem.ProtSplit, nil
	case "none":
		return splitmem.ProtNone, nil
	case "nx":
		return splitmem.ProtNX, nil
	case "split+nx", "splitnx":
		return splitmem.ProtSplitNX, nil
	}
	return 0, fmt.Errorf("unknown protection %q", s)
}

// ParseResponse maps the wire name to the library constant.
func ParseResponse(s string) (splitmem.ResponseMode, error) {
	switch s {
	case "", "break":
		return splitmem.Break, nil
	case "observe":
		return splitmem.Observe, nil
	case "forensics":
		return splitmem.Forensics, nil
	case "recovery":
		return splitmem.Recovery, nil
	}
	return 0, fmt.Errorf("unknown response mode %q", s)
}

// JobRequest is one submitted job: exactly one program form (S86 source or
// a base64 SELF binary), the input to feed it, the machine configuration,
// and per-job limits (clamped to the server's caps).
type JobRequest struct {
	Name string `json:"name,omitempty"`

	Source string `json:"source,omitempty"` // S86 assembly
	CRT    bool   `json:"crt,omitempty"`    // append the guest C runtime to Source
	Binary []byte `json:"binary,omitempty"` // base64 SELF image

	Stdin      []byte `json:"stdin,omitempty"`      // base64 bytes for the guest's fd 0
	StdinText  string `json:"stdin_text,omitempty"` // convenience alternative for text input
	KeepStdin  bool   `json:"keep_stdin,omitempty"` // do NOT signal EOF after the initial input
	Config     JobConfig `json:"config"`
	MaxCycles  uint64 `json:"max_cycles,omitempty"` // simulated-cycle budget (0 = server default)
	TimeoutMS  int64  `json:"timeout_ms,omitempty"` // wall-clock limit (0 = server default)
}

// ResumeRequest is a migration submission: the original job body plus the
// latest checkpoint image and the client-visible event cursor, shipped by
// the cluster gateway when it moves an in-flight job off a draining or
// crashed replica. Checkpoint may be empty — a job migrated before its
// first checkpoint (or off a dead replica) resumes from scratch, and the
// deterministic simulation re-produces the identical event stream, with
// Cursor suppressing the prefix the client has already seen.
type ResumeRequest struct {
	// Job is the original submission body, byte for byte — it replays
	// through DecodeJob exactly like a journal record.
	Job json.RawMessage `json:"job"`

	Checkpoint []byte `json:"checkpoint,omitempty"` // base64 snapshot image (may be empty)
	Cycles     uint64 `json:"cycles,omitempty"`     // simulated cycles consumed at that checkpoint
	Cursor     int    `json:"cursor,omitempty"`     // event lines already delivered to the client

	// Key is the idempotency token for this migration hop. A replica
	// accepts each key exactly once: a duplicate claim (a gateway retry
	// racing a slow first attempt) gets 409, so a migrated job can never
	// run twice on the same replica.
	Key string `json:"key,omitempty"`
}

// DecodeResume parses a resume submission. The embedded job body is NOT
// validated here — the caller runs it through DecodeJob like any other
// submission so migration inherits the same 400 mapping.
func DecodeResume(body []byte) (*ResumeRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var rr ResumeRequest
	if err := dec.Decode(&rr); err != nil {
		return nil, &SubmitError{Kind: "bad-request", Err: err}
	}
	if dec.More() {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("trailing data after resume object")}
	}
	if len(rr.Job) == 0 {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("resume needs the original job body")}
	}
	if len(rr.Checkpoint) == 0 && rr.Cycles != 0 {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("cycles without a checkpoint image")}
	}
	if rr.Cursor < 0 {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("negative cursor")}
	}
	return &rr, nil
}

// SubmitError is a job rejection attributable to the client. Kind is a
// stable machine-readable discriminator; Line is nonzero for assembly
// errors with a source position.
type SubmitError struct {
	Kind string // "bad-request" | "bad-config" | "bad-source" | "bad-image"
	Line int
	Err  error
}

// Error implements error.
func (e *SubmitError) Error() string { return e.Kind + ": " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SubmitError) Unwrap() error { return e.Err }

// DecodeJob parses and validates a job submission. Every rejection is a
// *SubmitError (a 400, in HTTP terms); the decoder never panics on hostile
// input — FuzzSubmitJSON pins that down.
func DecodeJob(body []byte) (*JobRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, &SubmitError{Kind: "bad-request", Err: err}
	}
	// Trailing garbage after the JSON document is a malformed request too.
	if dec.More() {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("trailing data after job object")}
	}
	if req.Source == "" && len(req.Binary) == 0 {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("job needs source or binary")}
	}
	if req.Source != "" && len(req.Binary) > 0 {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("source and binary are mutually exclusive")}
	}
	if len(req.Stdin) > 0 && req.StdinText != "" {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("stdin and stdin_text are mutually exclusive")}
	}
	if req.TimeoutMS < 0 {
		return nil, &SubmitError{Kind: "bad-request", Err: errors.New("negative timeout_ms")}
	}
	return &req, nil
}

// MachineConfig converts the wire configuration to a splitmem.Config and
// validates it. Rejections are *SubmitError of kind bad-config.
func (req *JobRequest) MachineConfig() (splitmem.Config, error) {
	var cfg splitmem.Config
	prot, err := ParseProtection(req.Config.Protection)
	if err != nil {
		return cfg, &SubmitError{Kind: "bad-config", Err: err}
	}
	resp, err := ParseResponse(req.Config.Response)
	if err != nil {
		return cfg, &SubmitError{Kind: "bad-config", Err: err}
	}
	cfg = splitmem.Config{
		Protection:        prot,
		Response:          resp,
		SplitFraction:     req.Config.SplitFraction,
		MixedOnly:         req.Config.MixedOnly,
		ForensicShellcode: req.Config.ForensicShellcode,
		SoftTLB:           req.Config.SoftTLB,
		LazyTwins:         req.Config.LazyTwins,
		ITLBSize:          req.Config.ITLBSize,
		DTLBSize:          req.Config.DTLBSize,
		PhysBytes:         req.Config.PhysBytes,
		TraceDepth:        req.Config.TraceDepth,
		Timeslice:         req.Config.Timeslice,
		Seed:              req.Config.Seed,
		RandomizeStack:    req.Config.RandomizeStack,
		Telemetry:         true, // job metrics fold into the service /metrics
	}
	if resp == splitmem.Forensics && len(cfg.ForensicShellcode) == 0 {
		cfg.ForensicShellcode = splitmem.ExitShellcode()
	}
	if cfg.PhysBytes == 0 {
		// Detonation jobs are small; a 16 MiB machine keeps hostile images
		// cheap to reject and lets many workers coexist.
		cfg.PhysBytes = 16 << 20
	}
	if err := cfg.Validate(); err != nil {
		return cfg, &SubmitError{Kind: "bad-config", Err: err}
	}
	return cfg, nil
}

// Program assembles or unmarshals the job's program. Rejections are
// *SubmitError: bad-source (with the offending line when the assembler
// reports one) or bad-image.
func (req *JobRequest) Program() (*splitmem.Program, error) {
	if req.Source != "" {
		src := req.Source
		if req.CRT {
			src = guest.WithCRT(src)
		}
		prog, err := splitmem.Assemble(src)
		if err != nil {
			var ae *splitmem.AsmError
			if errors.As(err, &ae) {
				return nil, &SubmitError{Kind: "bad-source", Line: ae.Line, Err: err}
			}
			return nil, &SubmitError{Kind: "bad-source", Err: err}
		}
		return prog, nil
	}
	prog, err := loader.Unmarshal(req.Binary)
	if err != nil {
		return nil, &SubmitError{Kind: "bad-image", Err: err}
	}
	return prog, nil
}

// InputBytes returns the stdin content the job carries.
func (req *JobRequest) InputBytes() []byte {
	if req.StdinText != "" {
		return []byte(req.StdinText)
	}
	return req.Stdin
}

// JobResult is the terminal record of a job, the last NDJSON line of a
// streamed run and the whole response of a synchronous one.
type JobResult struct {
	ID     uint64 `json:"id"`
	Name   string `json:"name,omitempty"`
	Reason string `json:"reason"` // final StopReason (or "timeout" when the wall clock expired)
	Cycles uint64 `json:"cycles"`

	Exited     bool   `json:"exited"`
	ExitStatus int    `json:"exit_status,omitempty"`
	Killed     bool   `json:"killed,omitempty"`
	Signal     string `json:"signal,omitempty"`

	Detections   int    `json:"detections"`
	ShellSpawned bool   `json:"shell_spawned"`
	EventCount   int    `json:"event_count"`
	Stdout       string `json:"stdout,omitempty"`

	TimedOut bool   `json:"timed_out,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
	Error    string `json:"error,omitempty"`

	Attempts  int  `json:"attempts,omitempty"`  // supervisor attempts consumed (1 = no retries)
	Recovered bool `json:"recovered,omitempty"` // job was replayed from the crash journal
	Migrated  bool `json:"migrated,omitempty"`  // job arrived as a cluster migration resume

	Events []splitmem.Event `json:"events,omitempty"` // synchronous responses only
	Stats  *splitmem.Stats  `json:"stats,omitempty"`

	Wall time.Duration `json:"wall_ns"`
}
