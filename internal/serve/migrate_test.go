package serve_test

// Replica-side tests of the cluster migration surface: checkpoint export
// and detach, resume-from-snapshot (and from scratch) with the event-cursor
// stitch, idempotent resume keys, the checkpoint CRC transfer gate, and the
// extended /healthz identity. The gateway-level tests live in
// internal/cluster; these prove the replica protocol in isolation.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"splitmem/internal/serve"
)

// longSpinSrc burns enough cycles for several stream slices and
// checkpoints, then exits 9. The count is sized so the job stays alive for
// hundreds of milliseconds even with cheap sparse-frame snapshots, giving
// the checkpoint pollers below a real window to catch it mid-flight.
const longSpinSrc = `
_start:
    mov ecx, 3000000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 9
    mov eax, 1
    int 0x80
`

// migLine is one decoded NDJSON frame, keeping the raw event bytes so
// stitched streams can be compared byte for byte against the oracle.
type migLine struct {
	Type    string           `json:"type"`
	ID      uint64           `json:"id"`
	Name    string           `json:"name"`
	Resumed bool             `json:"resumed"`
	Event   json.RawMessage  `json:"event"`
	Result  *serve.JobResult `json:"result"`
}

// readMigStream consumes a whole NDJSON response.
func readMigStream(t *testing.T, r io.Reader) []migLine {
	t.Helper()
	var lines []migLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l migLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestHealthzIdentity(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Instance struct {
			ID        string `json:"id"`
			StartTime string `json:"start_time"`
		} `json:"instance"`
		Cluster struct {
			LiveJobs    int    `json:"live_jobs"`
			MigratedOut uint64 `json:"migrated_out"`
		} `json:"cluster"`
		Recovery struct {
			Journal     bool   `json:"journal"`
			Checkpoints uint64 `json:"checkpoints"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Instance.ID == "" || h.Instance.ID != s.InstanceID() {
		t.Fatalf("healthz instance id %q, InstanceID() %q", h.Instance.ID, s.InstanceID())
	}
	if _, err := time.Parse(time.RFC3339Nano, h.Instance.StartTime); err != nil {
		t.Fatalf("unparseable start_time %q: %v", h.Instance.StartTime, err)
	}
	if h.Recovery.Journal {
		t.Fatal("journal reported enabled on a journal-less server")
	}
}

// TestDrainRetryAfterBacklogDerived pins satellite 1: the draining 503 path
// carries the same backlog-derived Retry-After formula as the 429 path, not
// a constant.
func TestDrainRetryAfterBacklogDerived(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 1, Backlog: 8})

	// Occupy the worker and fill some backlog so depth/workers > 5 — a
	// value the old hardcoded "5" could never exceed.
	var open []io.Closer
	defer func() {
		for _, c := range open {
			c.Close()
		}
	}()
	for i := 0; i < 7; i++ {
		resp, err := submit(t, ts.URL+"/v1/jobs?stream=1", map[string]any{
			"name": fmt.Sprintf("hold-%d", i), "source": spinSrc, "timeout_ms": 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, resp.Body)
		// Wait for the accepted line so the job is really admitted.
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("hold job %d: %v", i, err)
		}
	}
	if d := s.Depth(); d < 6 {
		t.Fatalf("depth %d, want >= 6", d)
	}

	s.BeginDrain()
	resp, err := submit(t, ts.URL+"/v1/jobs", map[string]any{"name": "late", "source": exitSrc})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	// Retry-After must equal 1 + depth/workers; with depth >= 6 and one
	// worker that is at least 7 — a value the old hardcoded "5" never hit.
	ra := resp.Header.Get("Retry-After")
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil {
		t.Fatalf("unparseable Retry-After %q: %v", ra, err)
	}
	if secs < 6 {
		t.Fatalf("Retry-After %q, want >= 6 with depth %d and 1 worker", ra, s.Depth())
	}
}

// TestCheckpointExportAndDetach runs a long job, exports its checkpoint
// mid-flight, detaches it, and checks the source stream ends with the typed
// "migrated" frame.
func TestCheckpointExportAndDetach(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Workers:          1,
		StreamSlice:      50_000,
		CheckpointCycles: 50_000,
	})

	resp, err := submit(t, ts.URL+"/v1/jobs?stream=1", map[string]any{
		"name": "migrate-me", "source": longSpinSrc, "timeout_ms": 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var acc migLine
	if err := json.Unmarshal([]byte(first), &acc); err != nil || acc.Type != "accepted" {
		t.Fatalf("first line %q", first)
	}

	// Wait for a checkpoint to exist, then export without detaching.
	var exp serve.CheckpointExport
	deadline := time.Now().Add(10 * time.Second)
	for {
		cr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoint", ts.URL, acc.ID))
		if err != nil {
			t.Fatal(err)
		}
		if cr.StatusCode == http.StatusOK {
			if err := json.NewDecoder(cr.Body).Decode(&exp); err != nil {
				t.Fatal(err)
			}
			cr.Body.Close()
			if len(exp.Checkpoint) > 0 {
				break
			}
		} else {
			cr.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if exp.Detached {
		t.Fatal("plain export must not detach")
	}
	if len(exp.Job) == 0 || exp.Cycles == 0 {
		t.Fatalf("export missing body or cycles: %+v", exp)
	}

	// Now detach: the job stops with the migrated frame.
	cr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoint?detach=1", ts.URL, acc.ID))
	if err != nil {
		t.Fatal(err)
	}
	var dexp serve.CheckpointExport
	if err := json.NewDecoder(cr.Body).Decode(&dexp); err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if !dexp.Detached {
		t.Fatal("detach export not marked detached")
	}

	lines := readMigStream(t, br)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil || last.Result.Reason != "migrated" {
		t.Fatalf("terminal frame %+v, want reason migrated", last)
	}

	// The export survives job teardown (bounded ring) for refetch.
	cr, err = http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoint", ts.URL, acc.ID))
	if err != nil {
		t.Fatal(err)
	}
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("refetch after detach: status %d", cr.StatusCode)
	}
	cr.Body.Close()

	// Unknown jobs 404.
	cr, err = http.Get(ts.URL + "/v1/jobs/999999/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	if cr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", cr.StatusCode)
	}
	cr.Body.Close()
}

// TestResumeFromCheckpointMatchesOracle migrates a job by hand — run on
// server A, detach with its checkpoint, resume on server B — and requires
// the stitched event stream plus result to be identical to an uninterrupted
// single-node run of the same job.
func TestResumeFromCheckpointMatchesOracle(t *testing.T) {
	cfg := serve.Config{Workers: 2, StreamSlice: 50_000, CheckpointCycles: 50_000}
	_, tsA := newTestServer(t, cfg)
	_, tsB := newTestServer(t, cfg)
	_, tsO := newTestServer(t, cfg)

	body := map[string]any{"name": "oracle-job", "source": longSpinSrc, "timeout_ms": 20000}

	// Oracle: the uninterrupted run.
	oresp, err := submit(t, tsO.URL+"/v1/jobs?stream=1", body)
	if err != nil {
		t.Fatal(err)
	}
	olines := readMigStream(t, oresp.Body)
	oresp.Body.Close()
	oresult := olines[len(olines)-1].Result
	if oresult == nil || oresult.Reason != "all-done" {
		t.Fatalf("oracle result %+v", olines[len(olines)-1])
	}

	// Interrupted run on A.
	resp, err := submit(t, tsA.URL+"/v1/jobs?stream=1", body)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var acc migLine
	json.Unmarshal([]byte(first), &acc)

	// Wait for a checkpoint, detach, and drain A's stream to find the
	// final cursor (event lines delivered before the migration).
	var exp serve.CheckpointExport
	deadline := time.Now().Add(10 * time.Second)
	for len(exp.Checkpoint) == 0 {
		cr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoint?detach=1", tsA.URL, acc.ID))
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(cr.Body).Decode(&exp)
		cr.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared on A")
		}
		if len(exp.Checkpoint) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	alines := readMigStream(t, br)
	resp.Body.Close()
	if last := alines[len(alines)-1]; last.Result == nil || last.Result.Reason != "migrated" {
		t.Fatalf("A's terminal frame %+v, want migrated", alines[len(alines)-1])
	}
	var aEvents []json.RawMessage
	for _, l := range alines {
		if l.Type == "event" {
			aEvents = append(aEvents, l.Event)
		}
	}

	// Resume on B with the shipped checkpoint and A's cursor.
	rr := map[string]any{
		"job":        json.RawMessage(mustJSON(t, body)),
		"checkpoint": exp.Checkpoint,
		"cycles":     exp.Cycles,
		"cursor":     len(aEvents),
		"key":        "test-migration-1",
	}
	bresp, err := submit(t, tsB.URL+"/v1/jobs/resume?stream=1", rr)
	if err != nil {
		t.Fatal(err)
	}
	blines := readMigStream(t, bresp.Body)
	bresp.Body.Close()
	if blines[0].Type != "accepted" || !blines[0].Resumed {
		t.Fatalf("B's first frame %+v, want resumed accepted", blines[0])
	}
	bresult := blines[len(blines)-1].Result
	if bresult == nil {
		t.Fatalf("B's stream had no result")
	}
	if !bresult.Migrated {
		t.Fatal("B's result not marked migrated")
	}
	var bEvents []json.RawMessage
	for _, l := range blines {
		if l.Type == "event" {
			bEvents = append(bEvents, l.Event)
		}
	}

	// Stitch: A's events then B's events must equal the oracle's events
	// byte for byte, with no duplicates at the seam.
	var oEvents []json.RawMessage
	for _, l := range olines {
		if l.Type == "event" {
			oEvents = append(oEvents, l.Event)
		}
	}
	stitched := append(append([]json.RawMessage{}, aEvents...), bEvents...)
	if len(stitched) != len(oEvents) {
		t.Fatalf("stitched %d events, oracle %d", len(stitched), len(oEvents))
	}
	for i := range stitched {
		if !bytes.Equal(stitched[i], oEvents[i]) {
			t.Fatalf("event %d differs:\n  stitched: %s\n  oracle:   %s", i, stitched[i], oEvents[i])
		}
	}

	// Result: the deterministic fields must match the oracle exactly.
	if bresult.Reason != oresult.Reason || bresult.Cycles != oresult.Cycles ||
		bresult.Exited != oresult.Exited || bresult.ExitStatus != oresult.ExitStatus ||
		bresult.Detections != oresult.Detections || bresult.EventCount != oresult.EventCount ||
		bresult.Stdout != oresult.Stdout {
		t.Fatalf("migrated result differs from oracle:\n  got:  %+v\n  want: %+v", bresult, oresult)
	}
}

// TestResumeIdempotentKey pins the exactly-once claim: the same migration
// key is accepted once and answered 409 the second time.
func TestResumeIdempotentKey(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	rr := map[string]any{
		"job": json.RawMessage(mustJSON(t, map[string]any{"name": "dup", "source": exitSrc})),
		"key": "dup-key-1",
	}
	resp, err := submit(t, ts.URL+"/v1/jobs/resume", rr)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first resume: status %d", resp.StatusCode)
	}
	resp, err = submit(t, ts.URL+"/v1/jobs/resume", rr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate resume: status %d, want 409", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	if e.Error != "duplicate-resume" {
		t.Fatalf("duplicate resume error kind %q", e.Error)
	}
}

// TestResumeRejectsCorruptCheckpoint pins the transfer-integrity gate: a
// bit-flipped image fails the snapshot CRC with the typed bad-checkpoint
// kind and never runs.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	cfg := serve.Config{Workers: 1, StreamSlice: 50_000, CheckpointCycles: 50_000}
	_, tsA := newTestServer(t, cfg)
	_, tsB := newTestServer(t, cfg)

	resp, err := submit(t, tsA.URL+"/v1/jobs?stream=1", map[string]any{
		"name": "victim", "source": longSpinSrc, "timeout_ms": 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	first, _ := br.ReadString('\n')
	var acc migLine
	json.Unmarshal([]byte(first), &acc)
	var exp serve.CheckpointExport
	deadline := time.Now().Add(10 * time.Second)
	for len(exp.Checkpoint) == 0 {
		cr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoint", tsA.URL, acc.ID))
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(cr.Body).Decode(&exp)
		cr.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		if len(exp.Checkpoint) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	resp.Body.Close() // disconnect; A cancels the job

	// Flip one bit mid-image: the CRC must catch it.
	exp.Checkpoint[len(exp.Checkpoint)/2] ^= 0x40
	rr := map[string]any{
		"job":        exp.Job,
		"checkpoint": exp.Checkpoint,
		"cycles":     exp.Cycles,
	}
	bresp, err := submit(t, tsB.URL+"/v1/jobs/resume", rr)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt checkpoint: status %d, want 400", bresp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(bresp.Body).Decode(&e)
	if e.Error != "bad-checkpoint" {
		t.Fatalf("corrupt checkpoint error kind %q", e.Error)
	}
}

// TestResumeFromScratchDedupesCursor resumes a job with no checkpoint but a
// nonzero cursor: the deterministic re-run must suppress the already-seen
// event prefix.
func TestResumeFromScratchDedupesCursor(t *testing.T) {
	cfg := serve.Config{Workers: 2, StreamSlice: 50_000}
	_, ts := newTestServer(t, cfg)

	body := mustJSON(t, map[string]any{"name": "scratch", "source": exitSrc})

	// Uninterrupted run for the event count.
	resp, err := submit(t, ts.URL+"/v1/jobs?stream=1", map[string]any{"name": "scratch", "source": exitSrc})
	if err != nil {
		t.Fatal(err)
	}
	base := readMigStream(t, resp.Body)
	resp.Body.Close()
	var baseEvents int
	for _, l := range base {
		if l.Type == "event" {
			baseEvents++
		}
	}
	if baseEvents == 0 {
		t.Fatal("baseline produced no events; test needs at least one")
	}

	// Resume from scratch with cursor=1: exactly the first event line is
	// suppressed.
	rr := map[string]any{"job": json.RawMessage(body), "cursor": 1}
	resp, err = submit(t, ts.URL+"/v1/jobs/resume?stream=1", rr)
	if err != nil {
		t.Fatal(err)
	}
	lines := readMigStream(t, resp.Body)
	resp.Body.Close()
	var gotEvents int
	for _, l := range lines {
		if l.Type == "event" {
			gotEvents++
		}
	}
	if gotEvents != baseEvents-1 {
		t.Fatalf("scratch resume with cursor=1 streamed %d events, want %d", gotEvents, baseEvents-1)
	}
	res := lines[len(lines)-1].Result
	if res == nil || res.Reason != "all-done" || res.EventCount != base[len(base)-1].Result.EventCount {
		t.Fatalf("scratch resume result %+v, baseline %+v", res, base[len(base)-1].Result)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
