package serve

// Crash-recovery integration tests, white-box so they can craft journals the
// way a crashed server leaves them. The claims under test:
//
//   - a worker killed mid-job (chaos) is restarted from its last checkpoint
//     and the job's final result is identical to an undisturbed run;
//   - a job acknowledged before a whole-process crash is replayed from the
//     journal on the next startup and runs to the same terminal result —
//     zero acknowledged-then-lost jobs;
//   - a retry budget spent on a job that keeps dying yields the typed
//     failed-after-retries result, and the server survives to run the next
//     job normally;
//   - hard shutdown (CancelRunning) and client disconnect are
//     distinguishable in the job's terminal frame.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"splitmem"
	"splitmem/internal/chaos"
)

// loopSrc burns ~2M cycles across many stream slices, then exits 5 — long
// enough for several checkpoints, short enough for -race.
const loopSrc = `
_start:
    mov ecx, 300000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 5
    mov eax, 1
    int 0x80
`

const spinForeverSrc = `
_start:
loop:
    jmp loop
`

func bootServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submitSync(t *testing.T, url, body string) JobResult {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkerPanicRecovery is the acceptance test for in-process supervision:
// chaos kills the worker mid-slice, repeatedly, and the supervised job must
// still finish with a result indistinguishable from an undisturbed run.
func TestWorkerPanicRecovery(t *testing.T) {
	body := fmt.Sprintf(`{"name": "loop", "source": %q, "timeout_ms": 30000}`, loopSrc)
	slices := Config{Workers: 1, StreamSlice: 100_000, CheckpointCycles: 100_000}

	_, cleanTS := bootServer(t, slices)
	want := submitSync(t, cleanTS.URL, body)
	if want.Reason != "all-done" || want.ExitStatus != 5 {
		t.Fatalf("clean run: %+v", want)
	}

	chaosCfg := slices
	chaosCfg.JournalPath = filepath.Join(t.TempDir(), "jobs.journal")
	chaosCfg.RetryBudget = 64
	chaosCfg.RetryBackoff = time.Millisecond
	chaosCfg.HostChaos = chaos.HostConfig{Seed: 42, WorkerKill: 0.35}
	s, chaosTS := bootServer(t, chaosCfg)
	got := submitSync(t, chaosTS.URL, body)

	if got.Reason != "all-done" || got.ExitStatus != want.ExitStatus {
		t.Fatalf("chaotic run diverged: %+v", got)
	}
	if got.Cycles != want.Cycles || got.EventCount != want.EventCount ||
		got.Detections != want.Detections || got.Stdout != want.Stdout {
		t.Fatalf("restored run not identical to clean run:\nclean %+v\nchaos %+v", want, got)
	}
	if got.Attempts < 2 {
		t.Fatalf("chaos never killed the worker (attempts=%d); the test proved nothing", got.Attempts)
	}
	if s.workerPanics.Load() == 0 || s.restores.Load() == 0 || s.retries.Load() == 0 {
		t.Fatalf("supervision counters flat: panics=%d restores=%d retries=%d",
			s.workerPanics.Load(), s.restores.Load(), s.retries.Load())
	}

	// Zero acknowledged-then-lost: the journal holds the job's terminal
	// result, durably.
	s.Close()
	done := readDoneResults(t, chaosCfg.JournalPath)
	var logged JobResult
	if err := json.Unmarshal(done[got.ID], &logged); err != nil {
		t.Fatalf("no durable terminal result for job %d: %v", got.ID, err)
	}
	if logged.Reason != "all-done" || logged.Cycles != want.Cycles {
		t.Fatalf("journaled result diverged: %+v", logged)
	}
}

// TestJournalRecoveryAcrossRestart crafts the journal a crashed server
// leaves behind — an acknowledged job plus a mid-run checkpoint, no terminal
// record — and proves a fresh server replays it to the exact result the
// uninterrupted run produces.
func TestJournalRecoveryAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	body := fmt.Sprintf(`{"name": "resume", "source": %q}`, loopSrc)

	// The uninterrupted truth, from the same machine pipeline the runner
	// uses.
	req, err := DecodeJob([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := req.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := req.Program()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := clean.LoadProgram(prog, req.Name)
	if err != nil {
		t.Fatal(err)
	}
	cp.StdinClose()
	cleanRes := clean.Run(0)
	if cleanRes.Reason != splitmem.ReasonAllDone {
		t.Fatalf("clean run: %v", cleanRes.Reason)
	}
	_, cleanStatus := cp.Exited()

	// The "crashed server": job acknowledged, one checkpoint written partway
	// in, then nothing.
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadProgram(prog, req.Name)
	if err != nil {
		t.Fatal(err)
	}
	p.StdinClose()
	part := m.Run(400_000)
	if part.Reason != splitmem.ReasonBudget {
		t.Fatalf("partial run ended early: %v", part.Reason)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	jn, err := openJournal(path, 64<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const jobID = 7
	if err := jn.logJob(jobID, []byte(body)); err != nil {
		t.Fatal(err)
	}
	if err := jn.logCheckpoint(jobID, part.Cycles, img); err != nil {
		t.Fatal(err)
	}
	jn.close()

	// Restart: the new server must notice, replay, and finish the job.
	s, err := New(Config{Workers: 2, StreamSlice: 100_000, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for s.Recovering() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("journal replay never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.recovered.Load() != 1 {
		t.Fatalf("recovered=%d want 1", s.recovered.Load())
	}
	if s.restores.Load() == 0 {
		t.Fatal("replay did not resume from the checkpoint image")
	}
	s.Close()

	done := readDoneResults(t, path)
	var res JobResult
	if err := json.Unmarshal(done[jobID], &res); err != nil {
		t.Fatalf("no terminal result for replayed job: %v", err)
	}
	if !res.Recovered {
		t.Fatalf("result not marked recovered: %+v", res)
	}
	if res.Reason != "all-done" || res.ExitStatus != cleanStatus || res.Cycles != cleanRes.Cycles {
		t.Fatalf("replayed result diverged from uninterrupted run:\nwant cycles=%d status=%d\ngot  %+v",
			cleanRes.Cycles, cleanStatus, res)
	}

	// And the journal is quiescent: nothing left to replay next time.
	jn2, err := openJournal(path, 64<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.close()
	if len(jn2.unfinished()) != 0 {
		t.Fatalf("journal still carries %d unfinished jobs", len(jn2.unfinished()))
	}
}

// TestRetryExhaustion: a job whose worker dies every single slice must fail
// with the typed reason after exactly RetryBudget attempts — and the server
// must shrug it off and run the next job normally.
func TestRetryExhaustion(t *testing.T) {
	cfg := Config{
		Workers:          1,
		StreamSlice:      100_000,
		CheckpointCycles: 100_000,
		RetryBudget:      2,
		RetryBackoff:     time.Millisecond,
		HostChaos:        chaos.HostConfig{Seed: 9, WorkerKill: 1},
	}
	s, ts := bootServer(t, cfg)
	body := fmt.Sprintf(`{"name": "doomed", "source": %q, "timeout_ms": 30000}`, loopSrc)
	res := submitSync(t, ts.URL, body)
	if res.Reason != "failed-after-retries" || res.Attempts != 2 {
		t.Fatalf("result %+v", res)
	}
	if res.Error == "" {
		t.Fatal("failed-after-retries without the fatal error")
	}
	if s.workerPanics.Load() != 2 {
		t.Fatalf("panics=%d want 2", s.workerPanics.Load())
	}
	// The pool's crash domain held: its workers never saw the panics.
	if s.pool.Panics() != 0 {
		t.Fatalf("panic escaped the supervisor into the pool: %d", s.pool.Panics())
	}
}

// TestDrainedVsDisconnectReasons: the two ways a job can be canceled from
// outside must name themselves distinguishably in the terminal frame.
func TestDrainedVsDisconnectReasons(t *testing.T) {
	t.Run("drained", func(t *testing.T) {
		s, ts := bootServer(t, Config{Workers: 1})
		body := fmt.Sprintf(`{"name": "spin", "source": %q, "timeout_ms": 30000}`, spinForeverSrc)
		resp, err := http.Post(ts.URL+"/v1/jobs?stream=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, `"accepted"`) {
			t.Fatalf("not accepted: %q %v", line, err)
		}
		s.CancelRunning()
		for {
			line, err := br.ReadString('\n')
			if strings.Contains(line, `"result"`) {
				var l struct {
					Result *JobResult `json:"result"`
				}
				if jerr := json.Unmarshal([]byte(line), &l); jerr != nil || l.Result == nil {
					t.Fatalf("bad result line %q: %v", line, jerr)
				}
				if l.Result.Reason != "drained" || !l.Result.Canceled {
					t.Fatalf("hard-stop reason %q (canceled=%v), want drained", l.Result.Reason, l.Result.Canceled)
				}
				return
			}
			if err != nil {
				t.Fatal("stream ended without a result line")
			}
		}
	})

	t.Run("disconnect", func(t *testing.T) {
		s, ts := bootServer(t, Config{Workers: 1})
		ctx, cancel := context.WithCancel(context.Background())
		body := fmt.Sprintf(`{"name": "spin", "source": %q, "timeout_ms": 30000}`, spinForeverSrc)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?stream=1",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(resp.Body)
		if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, `"accepted"`) {
			t.Fatalf("not accepted: %q %v", line, err)
		}
		cancel()
		resp.Body.Close()
		deadline := time.Now().Add(10 * time.Second)
		for s.Depth() != 0 {
			if time.Now().After(deadline) {
				t.Fatal("job still running after disconnect")
			}
			time.Sleep(5 * time.Millisecond)
		}
		// The client is gone, so read the reason off the server's own record.
		if r := s.canceled.Load(); r != 1 {
			t.Fatalf("canceled_total=%d want 1", r)
		}
		if s.timedOut.Load() != 0 {
			t.Fatal("disconnect misclassified as timeout")
		}
	})
}

// TestHealthzRecoveryState: /healthz exposes the supervision counters.
func TestHealthzRecoveryState(t *testing.T) {
	cfg := Config{
		Workers:          1,
		StreamSlice:      100_000,
		CheckpointCycles: 100_000,
		RetryBudget:      64,
		RetryBackoff:     time.Millisecond,
		JournalPath:      filepath.Join(t.TempDir(), "jobs.journal"),
		HostChaos:        chaos.HostConfig{Seed: 42, WorkerKill: 0.35},
	}
	_, ts := bootServer(t, cfg)
	body := fmt.Sprintf(`{"name": "loop", "source": %q, "timeout_ms": 30000}`, loopSrc)
	if res := submitSync(t, ts.URL, body); res.Reason != "all-done" {
		t.Fatalf("result %+v", res)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status   string `json:"status"`
		Recovery struct {
			Journal      bool   `json:"journal"`
			WorkerPanics uint64 `json:"worker_panics"`
			Checkpoints  uint64 `json:"checkpoints"`
			Restores     uint64 `json:"restores"`
			Retries      uint64 `json:"retries"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Recovery.Journal || h.Recovery.Checkpoints == 0 {
		t.Fatalf("healthz recovery state: %+v", h)
	}
	if h.Recovery.WorkerPanics == 0 || h.Recovery.Restores == 0 || h.Recovery.Retries == 0 {
		t.Fatalf("healthz supervision counters flat: %+v", h)
	}
}
