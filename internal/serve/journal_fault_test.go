package serve

// White-box tests for the journal's disk-fault behavior: the typed
// mid-file-corruption error (silent truncation there would un-acknowledge
// durable jobs) and the degraded in-memory mode with write-path recovery.

import (
	"errors"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// flakyDisk is a switchable DiskFaultInjector: every write fails while
// fail is set, everything else passes through.
type flakyDisk struct {
	fail   atomic.Bool
	writes atomic.Int64
}

func (f *flakyDisk) BeforeWrite(n int) (int, error) {
	f.writes.Add(1)
	if f.fail.Load() {
		return 0, errors.New("injected: no space left on device")
	}
	return n, nil
}
func (f *flakyDisk) BeforeSync() error    { return nil }
func (f *flakyDisk) OnRead(p []byte) bool { return false }

// TestJournalMidFileCorruptTypedError pins the corruption taxonomy: a
// CRC-failing record with data after it is mid-file corruption and must
// fail the open with the typed ErrJournalCorrupt — never a silent truncate
// that would drop the valid records (and the acknowledged jobs) after it.
func TestJournalMidFileCorruptTypedError(t *testing.T) {
	j, path := tempJournal(t, 1<<20, nil)
	for id := uint64(1); id <= 3; id++ {
		if err := j.logJob(id, []byte(`{"source": "x"}`)); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	// Flip one payload byte of the FIRST record: two valid records follow,
	// so this is bit rot under a once-durable record, not a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8+4] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = openJournal(path, 1<<20, nil, nil)
	if err == nil {
		t.Fatal("mid-file corruption opened silently")
	}
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("want ErrJournalCorrupt, got %v", err)
	}
	// The open must leave the file untouched for forensics.
	after, ferr := os.ReadFile(path)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if len(after) != len(raw) {
		t.Fatalf("failed open mutated the journal: %d bytes, was %d", len(after), len(raw))
	}
}

// TestJournalDegradesAndRecovers drives the degradation state machine: a
// persistently failing disk flips the journal to in-memory mode after the
// threshold, admission keeps updating the live table, and the first
// recovery rewrite after the disk heals restores durability with every
// record accepted during the outage intact.
func TestJournalDegradesAndRecovers(t *testing.T) {
	fd := &flakyDisk{}
	path := t.TempDir() + "/jobs.journal"
	j, err := openJournal(path, 1<<20, nil, fd)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	j.recoveryEvery = time.Millisecond

	if err := j.logJob(1, []byte(`{"source": "before"}`)); err != nil {
		t.Fatal(err)
	}

	// Threshold consecutive append failures flip the journal to degraded.
	fd.fail.Store(true)
	for id := uint64(2); id < 2+journalDegradeThreshold; id++ {
		if err := j.logJob(id, []byte(`{"source": "during"}`)); err == nil {
			t.Fatalf("job %d: failing disk reported a durable append", id)
		}
	}
	if !j.isDegraded() {
		t.Fatalf("%d consecutive append failures did not degrade the journal", journalDegradeThreshold)
	}

	// Degraded mode: appends report the typed degradation error but the
	// live table still admits — the journal never wedges admission.
	time.Sleep(2 * j.recoveryEvery) // make the next persist attempt a recovery try (which still fails)
	if err := j.logJob(10, []byte(`{"source": "degraded"}`)); !errors.Is(err, errJournalDegraded) {
		t.Fatalf("degraded append: want errJournalDegraded, got %v", err)
	}
	if got := len(j.unfinished()); got != 2+journalDegradeThreshold {
		t.Fatalf("live table lost records while degraded: %d jobs", got)
	}
	if j.degradedSeconds() <= 0 {
		t.Fatal("degraded window not accounted")
	}

	// Heal the disk: the next persist due a recovery attempt rewrites the
	// whole live table and restores durability.
	fd.fail.Store(false)
	time.Sleep(2 * j.recoveryEvery)
	if err := j.logJob(11, []byte(`{"source": "after"}`)); err != nil {
		t.Fatalf("post-heal append: %v", err)
	}
	if j.isDegraded() {
		t.Fatal("journal still degraded after a successful recovery rewrite")
	}
	if got := j.recoveryCount(); got != 1 {
		t.Fatalf("recoveries=%d want 1", got)
	}
	j.close()

	// Everything accepted before, during, and after the outage must replay.
	j2, err := openJournal(path, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	un := j2.unfinished()
	want := []uint64{1, 2, 3, 4, 10, 11}
	if len(un) != len(want) {
		t.Fatalf("replayed %d jobs, want %d: %+v", len(un), len(want), un)
	}
	for i, id := range want {
		if un[i].ID != id {
			t.Fatalf("replayed job %d has id %d, want %d", i, un[i].ID, id)
		}
	}
}
