package serve

// The warm pool: instead of assembling, loading, and booting a fresh machine
// per job, the first job for each distinct (program, config) pair builds a
// template — a machine parked right after LoadProgram, frozen into a
// splitmem.Image — and every later job forks from it, sharing all physical
// frames copy-on-write. Stdin is applied to the fork exactly where the cold
// path applies it, so a forked job is bit-identical to a cold-booted one (the
// Image/Fork determinism contract); the warm-vs-cold serve test pins it down.
//
// The pool is an availability optimization only: any failure — template build,
// image boot — falls back silently to the cold path and is counted, never
// surfaced to the client.

import (
	"crypto/sha256"
	"encoding/json"
	"sync"

	"splitmem"
)

// warmEntry is one cached template. The once gate makes the expensive build
// run exactly once per key even when a burst of identical jobs lands on every
// worker at once; losers block until the build resolves and then fork.
type warmEntry struct {
	once sync.Once
	img  *splitmem.Image
	err  error
}

// warmPool is a bounded FIFO cache of template images.
type warmPool struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*warmEntry
	order   []string
}

func newWarmPool(cap int) *warmPool {
	if cap <= 0 {
		cap = 32
	}
	return &warmPool{cap: cap, entries: make(map[string]*warmEntry)}
}

// warmKey identifies a template: everything that shapes the machine at the
// fork point. Stdin and budgets are per-job and deliberately excluded.
func warmKey(req *JobRequest) string {
	b, err := json.Marshal(struct {
		Name   string
		Source string
		CRT    bool
		Binary []byte
		Config JobConfig
	}{req.Name, req.Source, req.CRT, req.Binary, req.Config})
	if err != nil {
		return "" // unreachable for decoded requests; "" disables caching
	}
	sum := sha256.Sum256(b)
	return string(sum[:])
}

// template returns the cached image for key, building it with build on first
// use. hit reports whether the template already existed. A failed build is
// cached too (the same job class would fail the same way) until evicted.
func (wp *warmPool) template(key string, build func() (*splitmem.Image, error)) (img *splitmem.Image, hit bool, err error) {
	if key == "" {
		img, err = build()
		return img, false, err
	}
	wp.mu.Lock()
	e, ok := wp.entries[key]
	if !ok {
		e = &warmEntry{}
		wp.entries[key] = e
		wp.order = append(wp.order, key)
		if len(wp.order) > wp.cap {
			evict := wp.order[0]
			wp.order = wp.order[1:]
			delete(wp.entries, evict)
		}
	}
	wp.mu.Unlock()
	e.once.Do(func() { e.img, e.err = build() })
	return e.img, ok, e.err
}

// cachedTemplates reports the number of cached templates (0 on a nil pool,
// so the healthz render needs no guard).
func (wp *warmPool) cachedTemplates() int {
	if wp == nil {
		return 0
	}
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return len(wp.entries)
}

// warmFork builds or fetches the job's template and forks a machine from it.
// It returns (nil, nil) when anything fails — template build, boot, missing
// root process — and the caller cold-boots instead; failures here must never
// change a job's outcome, only its start latency.
func (s *Server) warmFork(j *job) (*splitmem.Machine, *splitmem.Process) {
	img, hit, err := s.warm.template(warmKey(j.req), func() (*splitmem.Image, error) {
		tm, terr := splitmem.New(j.cfg)
		if terr != nil {
			return nil, terr
		}
		defer tm.Close()
		if _, lerr := tm.LoadProgram(j.prog, j.req.Name); lerr != nil {
			return nil, lerr
		}
		return tm.Image()
	})
	if hit {
		s.warmHits.Add(1)
	} else {
		s.warmMisses.Add(1)
	}
	if err != nil {
		return nil, nil // cold path reproduces (and attributes) the error
	}
	m, err := img.Boot()
	if err != nil {
		return nil, nil
	}
	p, ok := m.Kernel().Process(1)
	if !ok {
		m.Close()
		return nil, nil
	}
	s.forks.Add(1)
	return m, p
}
