package serve_test

// FuzzSubmitJSON pins the service's first line of defense: the job decoder
// and everything downstream of it (config translation, the assembler, the
// SELF loader) must reject hostile submissions with a *SubmitError — never
// a panic — because this path runs on every byte an untrusted client sends.

import (
	"errors"
	"testing"

	"splitmem/internal/serve"
)

func FuzzSubmitJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"source": "_start:\n    jmp _start\n"}`,
		`{"name": "x", "source": "_start:\n    mov eax, 1\n    int 0x80\n", "crt": true}`,
		`{"binary": "f1M4NgE="}`,
		`{"source": "x", "binary": "QUJD"}`,
		`{"source": "x", "config": {"protection": "split+nx", "response": "forensics"}}`,
		`{"source": "x", "config": {"split_fraction": 7e300, "phys_bytes": -1}}`,
		`{"source": "x", "stdin": "kJCQkA==", "max_cycles": 18446744073709551615}`,
		`{"source": "x", "timeout_ms": -9223372036854775808}`,
		`{"source": "x"} {"source": "y"}`,
		"\x00\x01\x02",
		`{"source": "` + string(rune(0xFFFD)) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := serve.DecodeJob(body)
		if err != nil {
			var se *serve.SubmitError
			if !errors.As(err, &se) {
				t.Fatalf("DecodeJob error %T %v is not a SubmitError", err, err)
			}
			return
		}
		if _, err := req.MachineConfig(); err != nil {
			var se *serve.SubmitError
			if !errors.As(err, &se) {
				t.Fatalf("MachineConfig error %T %v is not a SubmitError", err, err)
			}
			return
		}
		if _, err := req.Program(); err != nil {
			var se *serve.SubmitError
			if !errors.As(err, &se) {
				t.Fatalf("Program error %T %v is not a SubmitError", err, err)
			}
		}
	})
}
