package serve

// The replica half of the cluster protocol (the gateway half lives in
// internal/cluster): every in-flight job keeps its latest checkpoint image
// registered so a gateway can ship it to a peer, and two endpoints extend
// the service surface —
//
//	GET  /v1/jobs/{id}/checkpoint[?detach=1]  export the job's latest
//	     CRC'd snapshot image (plus the original submission body). With
//	     detach=1 the job is atomically detached: it stops with the typed
//	     "migrated" terminal frame and will not run here again, so exactly
//	     one replica owns a job at any instant.
//	POST /v1/jobs/resume[?stream=1]           resume a migrated job from a
//	     shipped checkpoint (or from scratch when none exists — the
//	     deterministic simulation reproduces the identical stream). The
//	     request's cursor seeds the event pump, so lines the client already
//	     received are never re-streamed: the NDJSON stream stitches across
//	     the migration on the EventsSince cursor machinery.
//
// Resume is idempotent per migration key: a duplicate claim is answered
// 409, which is how "two replicas claim the same migrated job" resolves to
// exactly one winner even when a gateway retry races a slow first attempt.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"splitmem"
	"splitmem/internal/telemetry/hostspan"
)

// maxExports bounds the retained checkpoint exports of detached jobs, kept
// so a gateway whose fetch was corrupted in transit can refetch after the
// job has already stopped here.
const maxExports = 64

// liveJob is the migration-facing state of one in-flight job: the original
// submission body, the latest checkpoint, and the cancel hook that detaches
// the run.
type liveJob struct {
	id    uint64
	name  string
	body  []byte
	trace string // host-span trace ID ("" when tracing is off)

	mu       sync.Mutex
	img      []byte // latest checkpoint image (nil before the first)
	cycles   uint64 // simulated cycles consumed at that checkpoint
	detached bool
	cancel   context.CancelCauseFunc // installed by the runner; nil while queued
}

// attach installs the runner's cancel hook and reports whether the job was
// detached while still queued (in which case the runner must stop
// immediately with the migrated frame instead of running a detached job).
func (lj *liveJob) attach(cancel context.CancelCauseFunc) (detached bool) {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	lj.cancel = cancel
	return lj.detached
}

// CheckpointExport is the wire form of a checkpoint fetch: everything a
// peer needs to resume the job, CRC'd end to end (the snapshot image
// carries its own trailer checksum; VerifySnapshot is the transfer gate).
type CheckpointExport struct {
	ID         uint64          `json:"id"`
	Name       string          `json:"name,omitempty"`
	Job        json.RawMessage `json:"job"`
	Checkpoint []byte          `json:"checkpoint,omitempty"` // base64 snapshot image
	Cycles     uint64          `json:"cycles,omitempty"`
	Detached   bool            `json:"detached"`
}

// registerLive adds a job to the live registry. Called before the job is
// offered to the pool so the runner's attach can never miss it.
func (s *Server) registerLive(id uint64, name string, body []byte, trace string) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	s.live[id] = &liveJob{id: id, name: name, body: body, trace: trace}
}

// discardLive removes a job that was never admitted (shed after
// registration) without retaining an export.
func (s *Server) discardLive(id uint64) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	delete(s.live, id)
}

// lookupLive returns the live entry for id, or nil.
func (s *Server) lookupLive(id uint64) *liveJob {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return s.live[id]
}

// liveCheckpoint records a job's latest checkpoint image.
func (s *Server) liveCheckpoint(id uint64, img []byte, cycles uint64) {
	lj := s.lookupLive(id)
	if lj == nil {
		return
	}
	lj.mu.Lock()
	lj.img, lj.cycles = img, cycles
	lj.mu.Unlock()
}

// finishLive retires a job from the live registry. Detached jobs leave a
// bounded export behind so a corrupted checkpoint transfer can be refetched
// after the source run has already stopped.
func (s *Server) finishLive(id uint64) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	lj := s.live[id]
	delete(s.live, id)
	if lj == nil {
		return
	}
	lj.mu.Lock()
	detached := lj.detached
	exp := lj.exportLocked()
	lj.mu.Unlock()
	if !detached {
		return
	}
	s.exports[id] = exp
	s.exportOrder = append(s.exportOrder, id)
	for len(s.exportOrder) > maxExports {
		delete(s.exports, s.exportOrder[0])
		s.exportOrder = s.exportOrder[1:]
	}
}

// exportLocked snapshots the live entry as a wire export. Caller holds lj.mu.
func (lj *liveJob) exportLocked() *CheckpointExport {
	exp := &CheckpointExport{
		ID:       lj.id,
		Name:     lj.name,
		Job:      json.RawMessage(lj.body),
		Cycles:   lj.cycles,
		Detached: lj.detached,
	}
	if lj.img != nil {
		exp.Checkpoint = append([]byte(nil), lj.img...)
	}
	return exp
}

// exportCheckpoint fetches a job's latest checkpoint, detaching the run
// when asked. The detach is atomic under the entry's mutex: the first
// detach wins, cancels the run with the migrated cause, and bumps the
// counter; later fetches still see the export.
func (s *Server) exportCheckpoint(id uint64, detach bool) (*CheckpointExport, bool) {
	s.liveMu.Lock()
	lj := s.live[id]
	if lj == nil {
		exp, ok := s.exports[id]
		s.liveMu.Unlock()
		return exp, ok
	}
	s.liveMu.Unlock()

	lj.mu.Lock()
	var cancel context.CancelCauseFunc
	firstDetach := false
	if detach && !lj.detached {
		lj.detached = true
		firstDetach = true
		cancel = lj.cancel // nil while queued: the runner checks on attach
	}
	exp := lj.exportLocked()
	trace := lj.trace
	lj.mu.Unlock()
	if detach {
		exp.Detached = true
	}
	if cancel != nil {
		cancel(errMigrated)
	}
	if firstDetach {
		s.migratedOut.Add(1)
		s.rec.Instant(trace, "rep.detach", "job", strconv.FormatUint(id, 10))
	}
	s.rec.Instant(trace, "rep.checkpoint-export",
		"job", strconv.FormatUint(id, 10),
		"bytes", strconv.Itoa(len(exp.Checkpoint)),
		"cycles", strconv.FormatUint(exp.Cycles, 10))
	return exp, true
}

// MigratedOut reports jobs detached and shipped to a peer replica.
func (s *Server) MigratedOut() uint64 { return s.migratedOut.Load() }

// ResumedIn reports migration resumes accepted by this replica.
func (s *Server) ResumedIn() uint64 { return s.resumedIn.Load() }

// LiveJobs reports jobs currently registered as in flight (queued or
// running, not yet finished or detached). A draining daemon keeps its
// listener up until this reaches zero so a gateway can migrate the
// remainder off via checkpoint export.
func (s *Server) LiveJobs() int {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return len(s.live)
}

// --- HTTP surface ---------------------------------------------------------

// handleJobsSubtree routes /v1/jobs/... paths: the resume endpoint and the
// per-job checkpoint export.
func (s *Server) handleJobsSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if rest == "resume" {
		s.handleResume(w, r)
		return
	}
	if idStr, ok := strings.CutSuffix(rest, "/checkpoint"); ok {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err == nil {
			s.handleJobCheckpoint(w, r, id)
			return
		}
	}
	httpError(w, http.StatusNotFound, "not-found", "unknown job endpoint", nil)
}

// handleJobCheckpoint serves GET /v1/jobs/{id}/checkpoint. It works while
// draining on purpose — migration off a draining replica is exactly when
// the gateway calls it.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request, id uint64) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method-not-allowed", "GET the checkpoint", nil)
		return
	}
	detach := r.URL.Query().Get("detach") == "1"
	exp, ok := s.exportCheckpoint(id, detach)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("job %d is not in flight here", id), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(exp)
}

// handleResume serves POST /v1/jobs/resume: the migration submission path.
// It mirrors handleJobs — same admission queue, same journal durability,
// same 400 mapping for the embedded job body — plus the checkpoint CRC gate
// and the per-key idempotency claim.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST a resume object", nil)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter())
		s.refused.Add(1)
		httpError(w, http.StatusServiceUnavailable, "draining", "server is draining; resume elsewhere", nil)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		s.badInput.Add(1)
		httpError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), nil)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.badInput.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, "too-large",
			fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes), nil)
		return
	}

	rr, err := DecodeResume(body)
	var req *JobRequest
	var cfg splitmem.Config
	var prog *splitmem.Program
	if err == nil {
		req, err = DecodeJob(rr.Job)
	}
	if err == nil {
		cfg, err = req.MachineConfig()
	}
	if err == nil {
		prog, err = req.Program()
	}
	if err != nil {
		s.badInput.Add(1)
		var se *SubmitError
		if errors.As(err, &se) {
			extra := map[string]any{}
			if se.Line > 0 {
				extra["line"] = se.Line
			}
			httpError(w, http.StatusBadRequest, se.Kind, se.Err.Error(), extra)
		} else {
			httpError(w, http.StatusBadRequest, "bad-request", err.Error(), nil)
		}
		return
	}
	deadline, ok := s.checkDeadline(w, r)
	if !ok {
		return
	}
	// The transfer-integrity gate: a checkpoint that was corrupted on the
	// wire fails its own CRC here and is rejected before anything runs —
	// a corrupt image is refetched by the gateway, never resumed.
	if len(rr.Checkpoint) > 0 {
		if verr := splitmem.VerifySnapshot(rr.Checkpoint); verr != nil {
			s.badInput.Add(1)
			httpError(w, http.StatusBadRequest, "bad-checkpoint", verr.Error(), nil)
			return
		}
	}

	// Idempotency: claim the migration key before admission. The claim is
	// released only if this submission is shed, so a duplicate claim —
	// a gateway retry racing its own slow first attempt — loses with 409
	// and the job runs exactly once here.
	if rr.Key != "" {
		s.liveMu.Lock()
		if prev, dup := s.resumeKeys[rr.Key]; dup {
			s.liveMu.Unlock()
			s.resumeDups.Add(1)
			httpError(w, http.StatusConflict, "duplicate-resume",
				"migration key already claimed", map[string]any{"id": prev})
			return
		}
		s.resumeKeys[rr.Key] = 0
		s.liveMu.Unlock()
	}
	releaseKey := func() {
		if rr.Key == "" {
			return
		}
		s.liveMu.Lock()
		delete(s.resumeKeys, rr.Key)
		s.liveMu.Unlock()
	}

	id := s.nextID.Add(1)
	if rr.Key != "" {
		s.liveMu.Lock()
		s.resumeKeys[rr.Key] = id
		s.liveMu.Unlock()
	}

	// Trace continuity: the gateway forwards the job's original trace ID in
	// the header, so the spans this replica records join the same causal
	// timeline the source replica started.
	trace := r.Header.Get(hostspan.TraceHeader)
	if trace == "" && s.rec != nil {
		trace = hostspan.NewTraceID()
	}
	if trace != "" {
		w.Header().Set(hostspan.TraceHeader, trace)
	}

	j := &job{
		id:       id,
		req:      req,
		cfg:      cfg,
		prog:     prog,
		ctx:      r.Context(),
		done:     make(chan struct{}),
		cursor:   rr.Cursor,
		migrated: true,
		deadline: deadline,
		trace:    trace,
	}
	if len(rr.Checkpoint) > 0 {
		j.resume = &journalJob{ID: id, Body: rr.Job, Checkpoint: rr.Checkpoint, Cycles: rr.Cycles}
	}

	stream := wantsStream(r)
	var ndj *ndjsonWriter
	if stream {
		ndj = newNDJSONWriter(w, &s.streamed)
		j.sink = ndj
	}

	// Durability mirrors handleJobs: the journal holds the ORIGINAL job
	// body plus the shipped checkpoint, so a replica crash replays the
	// migrated job through the ordinary recovery path.
	s.journal.logJob(id, rr.Job)
	if len(rr.Checkpoint) > 0 {
		s.journal.logCheckpoint(id, rr.Cycles, rr.Checkpoint)
	}
	s.registerLive(id, req.Name, rr.Job, trace)
	s.rec.Instant(trace, "rep.resume",
		"job", strconv.FormatUint(id, 10),
		"key", rr.Key,
		"cursor", strconv.Itoa(rr.Cursor),
		"checkpoint_cycles", strconv.FormatUint(rr.Cycles, 10))
	j.enqueue = s.rec.Begin(trace, "rep.enqueue-wait", "job", strconv.FormatUint(id, 10))
	task := func(poolCtx context.Context) {
		defer close(j.done)
		s.runJob(poolCtx, j)
	}
	if !s.pool.TrySubmit(task) {
		s.discardLive(id)
		releaseKey()
		s.rec.End(j.enqueue, "outcome", "shed")
		if res, jerr := json.Marshal(&JobResult{ID: id, Reason: "shed"}); jerr == nil {
			s.journal.logDone(id, res)
		}
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfter())
			s.refused.Add(1)
			httpError(w, http.StatusServiceUnavailable, "draining", "server is draining", nil)
			return
		}
		w.Header().Set("Retry-After", s.retryAfter())
		s.rejected.Add(1)
		httpError(w, http.StatusTooManyRequests, "queue-full",
			"admission queue is full; retry after the indicated delay", nil)
		return
	}
	s.accepted.Add(1)
	s.resumedIn.Add(1)

	if stream {
		accepted := map[string]any{"type": "accepted", "id": id, "name": req.Name, "resumed": true}
		if trace != "" {
			accepted["trace"] = trace
		}
		ndj.Line(accepted)
		<-j.done
		s.accountResult(&j.result)
		ndj.Result(&j.result)
		return
	}
	<-j.done
	s.accountResult(&j.result)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&j.result)
}
