// Package loadtest is the load-generation harness for splitmem-serve: many
// concurrent clients hammering one server, with the bookkeeping needed to
// prove the service's admission contract — every acknowledged job reaches a
// terminal result (zero dropped-then-acknowledged jobs), every shed job is
// an explicit 429, and streams always end in exactly one result line.
//
// It drives the service through its public HTTP surface only, so the same
// harness runs against an httptest server (the -race integration tests), a
// live process (cmd/splitmem-serve -selftest), and the benchmark row.
package loadtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"splitmem/internal/chaos"
)

// busyLoop is the default job: a source program that spins long enough to
// make worker contention real, then exits cleanly.
const busyLoop = `
_start:
    mov ecx, 20000
spin:
    add eax, 1
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1          ; exit(0)
    int 0x80
`

// DefaultJobBody returns the standard loadgen submission.
func DefaultJobBody(client, job int) ([]byte, error) {
	return json.Marshal(map[string]any{
		"name":   fmt.Sprintf("loadgen-c%d-j%d", client, job),
		"source": busyLoop,
	})
}

// Config shapes a load run.
type Config struct {
	BaseURL string // e.g. "http://127.0.0.1:8086" (no trailing slash)

	Clients int  // concurrent clients (default 64)
	Jobs    int  // jobs per client (default 4)
	Stream  bool // exercise the NDJSON streaming path

	// Body builds the submission for (client, job). Default: DefaultJobBody.
	Body func(client, job int) ([]byte, error)

	HTTP       *http.Client  // default: a fresh client with no timeout
	MaxRetries int           // 429 retries per job before giving up (default 200)
	RetryDelay time.Duration // wait between 429 retries (default 20ms)

	// Retry503 also retries 503 responses. Against a single replica a 503
	// means draining (terminal); against a gateway it is a transient
	// no-replica window during a rolling restart, worth waiting out.
	Retry503 bool

	// Seed drives the per-client retry jitter streams (each client waits a
	// jittered RetryDelay in [d/2, d) so a shed storm's retries do not
	// re-arrive in lockstep). Equal seeds give equal schedules.
	Seed uint64

	// OnResult, when set, receives every terminal result as raw JSON —
	// the hook cluster tests use to oracle-compare migrated jobs.
	OnResult func(client, job int, result []byte)

	// OnEvent, when set, receives every streamed event line as raw JSON
	// (stream mode only) — the hook the chaos campaign uses to byte-compare
	// stitched event streams against the fault-free oracle.
	OnEvent func(client, job int, event []byte)
}

// Report is the outcome of a load run.
type Report struct {
	Clients int
	Jobs    int // jobs per client

	Acknowledged int // submissions the server accepted (2xx / accepted line)
	Completed    int // acknowledged jobs that reached a terminal result
	Rejected429  int // explicit queue-full shed responses (retried)
	Rejected503  int // unavailable responses retried (Retry503 mode)
	Migrated     int // completed jobs whose result was marked migrated
	GaveUp       int // jobs that exhausted their 429 retry budget
	Failures     []string

	Wall       time.Duration
	JobsPerSec float64 // completed jobs per wall-clock second
}

// Lost reports acknowledged jobs that never produced a terminal result —
// the number the service contract requires to be zero.
func (r *Report) Lost() int { return r.Acknowledged - r.Completed }

// Run executes the load test. The returned error covers harness failures
// only; contract violations land in Report.Failures so the caller can
// report them all.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: BaseURL required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 64
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 4
	}
	if cfg.Body == nil {
		cfg.Body = DefaultJobBody
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 200
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 20 * time.Millisecond
	}

	var (
		acked, completed, rejected, rejected503, migrated, gaveUp atomic.Int64
		mu                                                        sync.Mutex
		failures                                                  []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 32 { // keep reports readable under systemic failure
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	url := cfg.BaseURL + "/v1/jobs"
	if cfg.Stream {
		url += "?stream=1"
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			jit := chaos.NewJitter(cfg.Seed ^ (uint64(c)+1)*0x9E3779B97F4A7C15)
			for j := 0; j < cfg.Jobs; j++ {
				body, err := cfg.Body(c, j)
				if err != nil {
					fail("c%d j%d: build body: %v", c, j, err)
					continue
				}
				ok := false
				for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
					resp, err := cfg.HTTP.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						fail("c%d j%d: POST: %v", c, j, err)
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests ||
						(cfg.Retry503 && resp.StatusCode == http.StatusServiceUnavailable) {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode == http.StatusTooManyRequests {
							rejected.Add(1)
						} else {
							rejected503.Add(1)
						}
						time.Sleep(jit.Scale(cfg.RetryDelay))
						continue
					}
					if resp.StatusCode != http.StatusOK {
						b, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						fail("c%d j%d: status %d: %s", c, j, resp.StatusCode, bytes.TrimSpace(b))
						break
					}
					sink := resultSink{acked: &acked, completed: &completed, migrated: &migrated}
					if cfg.OnResult != nil {
						c, j := c, j
						sink.onResult = func(raw []byte) { cfg.OnResult(c, j, raw) }
					}
					if cfg.OnEvent != nil {
						c, j := c, j
						sink.onEvent = func(raw []byte) { cfg.OnEvent(c, j, raw) }
					}
					if cfg.Stream {
						err = consumeStream(resp.Body, sink)
					} else {
						err = consumeSync(resp.Body, sink)
					}
					resp.Body.Close()
					if err != nil {
						fail("c%d j%d: %v", c, j, err)
					}
					ok = true
					break
				}
				if !ok {
					gaveUp.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	rep := &Report{
		Clients:      cfg.Clients,
		Jobs:         cfg.Jobs,
		Acknowledged: int(acked.Load()),
		Completed:    int(completed.Load()),
		Rejected429:  int(rejected.Load()),
		Rejected503:  int(rejected503.Load()),
		Migrated:     int(migrated.Load()),
		GaveUp:       int(gaveUp.Load()),
		Failures:     failures,
		Wall:         time.Since(start),
	}
	if rep.Wall > 0 {
		rep.JobsPerSec = float64(rep.Completed) / rep.Wall.Seconds()
	}
	return rep, nil
}

// resultSink carries the run's counters plus the optional per-result and
// per-event hooks into the stream consumers.
type resultSink struct {
	acked, completed, migrated *atomic.Int64
	onResult                   func(raw []byte)
	onEvent                    func(raw []byte)
}

func (s resultSink) result(raw []byte) {
	s.completed.Add(1)
	var res struct {
		Migrated bool `json:"migrated"`
	}
	if json.Unmarshal(raw, &res) == nil && res.Migrated {
		s.migrated.Add(1)
	}
	if s.onResult != nil {
		s.onResult(raw)
	}
}

// consumeSync reads a synchronous JSON result. A 200 is the acknowledgment
// and the body is the terminal record, so both counters move together —
// unless the body is garbage, which is a contract violation.
func consumeSync(r io.Reader, sink resultSink) error {
	sink.acked.Add(1)
	body, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("reading sync result: %v", err)
	}
	var res struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		return fmt.Errorf("bad sync result: %v", err)
	}
	if res.Reason == "" {
		return fmt.Errorf("sync result missing reason")
	}
	sink.result(body)
	return nil
}

// consumeStream reads an NDJSON stream and enforces its shape: an accepted
// line, any number of event lines, exactly one terminal result line, and
// nothing after it. A stream that ends without a result line is a
// dropped-then-acknowledged job — the failure the harness exists to catch.
func consumeStream(r io.Reader, sink resultSink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var sawAccepted, sawResult bool
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var msg struct {
			Type   string          `json:"type"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(line, &msg); err != nil {
			return fmt.Errorf("unparseable stream line %q: %v", line, err)
		}
		switch msg.Type {
		case "accepted":
			if sawAccepted {
				return fmt.Errorf("duplicate accepted line")
			}
			sawAccepted = true
			sink.acked.Add(1)
		case "event":
			if !sawAccepted {
				return fmt.Errorf("event line before accepted")
			}
			if sink.onEvent != nil {
				sink.onEvent(append([]byte(nil), line...))
			}
		case "result":
			if !sawAccepted {
				return fmt.Errorf("result line before accepted")
			}
			if sawResult {
				return fmt.Errorf("duplicate result line")
			}
			sawResult = true
			sink.result(msg.Result)
		default:
			return fmt.Errorf("unknown stream line type %q", msg.Type)
		}
		if sawResult {
			// Anything after the result line breaks the framing contract.
			for sc.Scan() {
				if len(bytes.TrimSpace(sc.Bytes())) > 0 {
					return fmt.Errorf("data after result line")
				}
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream read: %v", err)
	}
	if sawAccepted && !sawResult {
		return fmt.Errorf("stream truncated: accepted but no result line")
	}
	if !sawAccepted {
		return fmt.Errorf("stream had no accepted line")
	}
	return nil
}

// String renders the report the way the selftest prints it.
func (r *Report) String() string {
	s := fmt.Sprintf("loadtest: %d clients x %d jobs: %d acknowledged, %d completed, %d lost, %d shed (429), %d unavailable (503), %d migrated, %d gave up in %v (%.1f jobs/s)",
		r.Clients, r.Jobs, r.Acknowledged, r.Completed, r.Lost(), r.Rejected429, r.Rejected503, r.Migrated, r.GaveUp,
		r.Wall.Round(time.Millisecond), r.JobsPerSec)
	for _, f := range r.Failures {
		s += "\n  FAIL: " + f
	}
	return s
}
