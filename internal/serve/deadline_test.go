package serve_test

// Deadline-propagation tests, driven through the public HTTP surface: the
// X-Splitmem-Deadline header parses (or rejects) cleanly, an
// already-expired deadline is refused with 504 before any work is queued,
// and a deadline that lands mid-run clamps the job with the typed
// "deadline-exceeded" reason — the signal the gateway uses to stop
// retrying a hop that can no longer meet the client's budget.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"splitmem/internal/serve"
)

func TestParseDeadline(t *testing.T) {
	h := http.Header{}

	// Absent header: no deadline, no error.
	if dl, err := serve.ParseDeadline(h); err != nil || !dl.IsZero() {
		t.Fatalf("absent header: (%v, %v), want zero time and nil", dl, err)
	}

	// A future deadline round-trips at millisecond precision.
	want := time.Now().Add(3 * time.Second).Truncate(time.Millisecond)
	h.Set(serve.DeadlineHeader, strconv.FormatInt(want.UnixMilli(), 10))
	dl, err := serve.ParseDeadline(h)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Equal(want) {
		t.Fatalf("parsed %v, want %v", dl, want)
	}

	// Garbage and non-positive values are typed errors, not silent zeros:
	// a client that TRIED to set a deadline must never run unbounded.
	for _, bad := range []string{"soon", "-5", "0", "1.5"} {
		h.Set(serve.DeadlineHeader, bad)
		if _, err := serve.ParseDeadline(h); err == nil {
			t.Fatalf("header %q parsed without error", bad)
		}
	}
}

// deadlineSubmit posts a job with the deadline header set.
func deadlineSubmit(t *testing.T, url, source string, deadline time.Time, timeoutMS int) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"name": "deadline", "source": %q, "timeout_ms": %d}`, source, timeoutMS)
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.DeadlineHeader, strconv.FormatInt(deadline.UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDeadlineExpiredOnArrival(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	resp := deadlineSubmit(t, ts.URL+"/v1/jobs", exitSrc, time.Now().Add(-time.Second), 5000)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestDeadlineBadHeaderRejected(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"name": "bad", "source": "_start:"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.DeadlineHeader, "whenever")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestDeadlineClampsRunningJob submits an infinite spin whose own timeout
// (30s) would far outlive the 300ms propagated deadline: the deadline must
// win, and the result must say so with the typed reason — not the generic
// "timeout" the job's own budget produces.
func TestDeadlineClampsRunningJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	start := time.Now()
	resp := deadlineSubmit(t, ts.URL+"/v1/jobs", spinSrc, time.Now().Add(300*time.Millisecond), 30_000)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res := decodeResult(t, resp.Body)
	if res.Reason != "deadline-exceeded" {
		t.Fatalf("reason %q, want deadline-exceeded (%+v)", res.Reason, res)
	}
	if !res.TimedOut {
		t.Fatalf("deadline-clamped result not marked timed out: %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline did not clamp the 30s job budget: took %v", elapsed)
	}
}
