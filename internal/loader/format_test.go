package loader

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func validProgram() *Program {
	return &Program{
		Entry: 0x08048000,
		Sections: []Section{
			{Name: ".text", Addr: 0x08048000, Size: 64, Perm: PermR | PermX, Data: []byte{0x90, 0xC3}},
			{Name: ".data", Addr: 0x08060000, Size: 4096, Perm: PermR | PermW, Data: []byte("hello")},
		},
		Symbols: map[string]uint32{"_start": 0x08048000, "msg": 0x08060000},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := map[string]func(*Program){
		"no sections":    func(p *Program) { p.Sections = nil },
		"empty section":  func(p *Program) { p.Sections[0].Size = 0 },
		"data over size": func(p *Program) { p.Sections[0].Size = 1 },
		"overlap": func(p *Program) {
			p.Sections[1].Addr = p.Sections[0].Addr + 4
		},
		"wraps": func(p *Program) {
			p.Sections[1].Addr = 0xFFFFFFF0
			p.Sections[1].Size = 0x100
		},
		"entry outside text": func(p *Program) { p.Entry = 0x08060000 },
		"entry not executable": func(p *Program) {
			p.Sections[0].Perm = PermR
		},
	}
	for name, mutate := range tests {
		p := validProgram()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := validProgram()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != p.Entry || len(q.Sections) != len(p.Sections) {
		t.Fatal("header mismatch")
	}
	for i := range p.Sections {
		a, b := &p.Sections[i], &q.Sections[i]
		if a.Name != b.Name || a.Addr != b.Addr || a.Size != b.Size ||
			a.Perm != b.Perm || string(a.Data) != string(b.Data) {
			t.Fatalf("section %d mismatch", i)
		}
	}
	for k, v := range p.Symbols {
		if q.Symbols[k] != v {
			t.Fatalf("symbol %s", k)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	good, _ := validProgram().Marshal()
	cases := [][]byte{
		nil,
		{},
		[]byte("ELF!"),
		good[:8],
		good[:len(good)-3],
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Bad version.
	bad := append([]byte(nil), good...)
	bad[4] = 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}
}

// TestUnmarshalTruncationFuzz: every prefix of a valid image must fail
// cleanly (no panic).
func TestUnmarshalTruncationFuzz(t *testing.T) {
	good, _ := validProgram().Marshal()
	for cut := 0; cut < len(good); cut++ {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestQuickUnmarshalNoPanic feeds random mutations of a valid image.
func TestQuickUnmarshalNoPanic(t *testing.T) {
	good, _ := validProgram().Marshal()
	f := func(pos uint16, val byte) bool {
		b := append([]byte(nil), good...)
		b[int(pos)%len(b)] = val
		_, _ = Unmarshal(b) // must not panic; error is fine
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumStable(t *testing.T) {
	a, err := validProgram().Checksum()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := validProgram().Checksum()
	if a != b {
		t.Fatal("checksum not deterministic")
	}
	mod := validProgram()
	mod.Sections[0].Data[0] = 0xCC
	c, _ := mod.Checksum()
	if c == a {
		t.Fatal("checksum insensitive to content")
	}
}

func TestPermString(t *testing.T) {
	tests := map[byte]string{
		0:                     "---",
		PermR:                 "r--",
		PermR | PermW:         "rw-",
		PermR | PermX:         "r-x",
		PermR | PermW | PermX: "rwx",
	}
	for p, want := range tests {
		if got := PermString(p); got != want {
			t.Errorf("%#x: %q want %q", p, got, want)
		}
	}
}

func TestSectionHelpers(t *testing.T) {
	s := Section{Addr: 0x1800, Size: 0x1000, Perm: PermR | PermW | PermX}
	if !s.Mixed() || !s.Executable() || !s.Writable() {
		t.Fatal("helpers broken")
	}
	first, last := s.PageSpan()
	if first != 1 || last != 3 {
		t.Fatalf("span %d..%d", first, last)
	}
	if s.End() != 0x2800 {
		t.Fatalf("end=%#x", s.End())
	}
}

func TestSymbolLookup(t *testing.T) {
	p := validProgram()
	if v, ok := p.Symbol("msg"); !ok || v != 0x08060000 {
		t.Fatal("symbol lookup")
	}
	if _, ok := p.Symbol("nope"); ok {
		t.Fatal("ghost symbol")
	}
}
