// Package loader defines SELF ("Simple Executable and Linkable Format"),
// the on-disk binary format for S86 guest programs, mirroring the role ELF
// plays for the paper's Linux prototype. A SELF image is a set of sections
// with load addresses and R/W/X permissions, an entry point, and a symbol
// table. The kernel's ELF-loader equivalent (internal/kernel) maps SELF
// images into a process address space and — when split memory is enabled —
// duplicates each page into code and data frames, exactly as the paper's
// 90-line ELF loader patch does.
package loader

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"splitmem/internal/mem"
)

// ErrBadImage is the sentinel wrapped by every Unmarshal rejection of a
// malformed or hostile SELF image — truncation, bad magic, implausible
// counts, structural invariant violations. Callers that feed untrusted
// bytes (the analysis service's job decoder) distinguish "the input is
// garbage" (errors.Is(err, ErrBadImage) → client error) from an internal
// failure with errors.Is.
var ErrBadImage = errors.New("loader: bad image")

// Section permission flags.
const (
	PermR = 1 << 0 // readable
	PermW = 1 << 1 // writable
	PermX = 1 << 2 // executable
)

// PermString renders flags as "rwx" notation.
func PermString(p byte) string {
	s := []byte("---")
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s)
}

// Section is one loadable region of a program image.
type Section struct {
	Name string
	Addr uint32 // virtual load address
	Size uint32 // size in memory; may exceed len(Data) (zero-filled tail)
	Perm byte   // PermR|PermW|PermX
	Data []byte
}

// Executable reports whether the section may be fetched from.
func (s *Section) Executable() bool { return s.Perm&PermX != 0 }

// Writable reports whether the section may be written.
func (s *Section) Writable() bool { return s.Perm&PermW != 0 }

// Mixed reports whether the section is both writable and executable — the
// "mixed code and data" case (Fig. 1b of the paper) that pure
// execute-disable-bit schemes cannot protect.
func (s *Section) Mixed() bool { return s.Executable() && s.Writable() }

// End returns the first address past the section.
func (s *Section) End() uint32 { return s.Addr + s.Size }

// Program is a parsed SELF image.
type Program struct {
	Entry    uint32
	Sections []Section
	Symbols  map[string]uint32
}

// Symbol returns the address of a named symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// Validate checks structural invariants: non-overlapping page-aligned-able
// sections, entry inside an executable section, sizes covering data.
func (p *Program) Validate() error {
	if len(p.Sections) == 0 {
		return fmt.Errorf("loader: program has no sections")
	}
	secs := make([]Section, len(p.Sections))
	copy(secs, p.Sections)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })
	for i := range secs {
		s := &secs[i]
		if s.Size == 0 {
			return fmt.Errorf("loader: section %q is empty", s.Name)
		}
		if uint32(len(s.Data)) > s.Size {
			return fmt.Errorf("loader: section %q data (%d) exceeds size (%d)", s.Name, len(s.Data), s.Size)
		}
		if s.Addr+s.Size < s.Addr {
			return fmt.Errorf("loader: section %q wraps the address space", s.Name)
		}
		if i > 0 && s.Addr < secs[i-1].End() {
			return fmt.Errorf("loader: sections %q and %q overlap", secs[i-1].Name, s.Name)
		}
	}
	entryOK := false
	for i := range p.Sections {
		s := &p.Sections[i]
		if s.Executable() && p.Entry >= s.Addr && p.Entry < s.End() {
			entryOK = true
			break
		}
	}
	if !entryOK {
		return fmt.Errorf("loader: entry %#x is not inside an executable section", p.Entry)
	}
	return nil
}

// PageSpan returns the inclusive first and exclusive last virtual page
// numbers the section occupies.
func (s *Section) PageSpan() (first, last uint32) {
	return s.Addr >> mem.PageShift, (s.End() + mem.PageMask) >> mem.PageShift
}

// selfMagic identifies a serialized SELF image.
var selfMagic = [4]byte{0x7F, 'S', '8', '6'}

const selfVersion = 1

// Marshal serializes the program to the SELF wire format.
func (p *Program) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(selfMagic[:])
	w32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	wstr := func(s string) {
		w32(uint32(len(s)))
		buf.WriteString(s)
	}
	w32(selfVersion)
	w32(p.Entry)
	w32(uint32(len(p.Sections)))
	for i := range p.Sections {
		s := &p.Sections[i]
		wstr(s.Name)
		w32(s.Addr)
		w32(s.Size)
		w32(uint32(s.Perm))
		w32(uint32(len(s.Data)))
		buf.Write(s.Data)
	}
	// Deterministic symbol order.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	w32(uint32(len(names)))
	for _, n := range names {
		wstr(n)
		w32(p.Symbols[n])
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a SELF image. Every rejection of malformed input wraps
// ErrBadImage, so errors.Is(err, ErrBadImage) identifies untrusted-input
// failures.
func Unmarshal(b []byte) (*Program, error) {
	r := bytes.NewReader(b)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != selfMagic {
		return nil, fmt.Errorf("%w: bad SELF magic", ErrBadImage)
	}
	r32 := func() (uint32, error) {
		var v [4]byte
		if _, err := io.ReadFull(r, v[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated image", ErrBadImage)
		}
		return binary.LittleEndian.Uint32(v[:]), nil
	}
	rstr := func() (string, error) {
		n, err := r32()
		if err != nil {
			return "", err
		}
		if n > uint32(r.Len()) {
			return "", fmt.Errorf("%w: truncated string", ErrBadImage)
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(r, s); err != nil {
			return "", fmt.Errorf("%w: truncated string", ErrBadImage)
		}
		return string(s), nil
	}
	ver, err := r32()
	if err != nil {
		return nil, err
	}
	if ver != selfVersion {
		return nil, fmt.Errorf("%w: unsupported SELF version %d", ErrBadImage, ver)
	}
	p := &Program{Symbols: map[string]uint32{}}
	if p.Entry, err = r32(); err != nil {
		return nil, err
	}
	nsec, err := r32()
	if err != nil {
		return nil, err
	}
	if nsec > 1024 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadImage, nsec)
	}
	for i := uint32(0); i < nsec; i++ {
		var s Section
		if s.Name, err = rstr(); err != nil {
			return nil, err
		}
		if s.Addr, err = r32(); err != nil {
			return nil, err
		}
		if s.Size, err = r32(); err != nil {
			return nil, err
		}
		perm, err := r32()
		if err != nil {
			return nil, err
		}
		s.Perm = byte(perm)
		dlen, err := r32()
		if err != nil {
			return nil, err
		}
		if dlen > uint32(r.Len()) {
			return nil, fmt.Errorf("%w: truncated section data", ErrBadImage)
		}
		s.Data = make([]byte, dlen)
		if _, err := io.ReadFull(r, s.Data); err != nil {
			return nil, fmt.Errorf("%w: truncated section data", ErrBadImage)
		}
		p.Sections = append(p.Sections, s)
	}
	nsym, err := r32()
	if err != nil {
		return nil, err
	}
	if nsym > 1<<20 {
		return nil, fmt.Errorf("%w: implausible symbol count %d", ErrBadImage, nsym)
	}
	for i := uint32(0); i < nsym; i++ {
		name, err := rstr()
		if err != nil {
			return nil, err
		}
		v, err := r32()
		if err != nil {
			return nil, err
		}
		p.Symbols[name] = v
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return p, nil
}

// FNV1a computes the 64-bit FNV-1a digest used as the stand-in for the
// DigSig/VerifiedExec binary signatures the paper delegates to ([28],[29]):
// the kernel's validated library loading (dlload) verifies module bytes
// against it before splitting them into code and data twins.
func FNV1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Checksum computes the image digest (FNV-1a over the canonical
// serialization).
func (p *Program) Checksum() (uint64, error) {
	b, err := p.Marshal()
	if err != nil {
		return 0, err
	}
	return FNV1a(b), nil
}
