// Package chaos implements a deterministic, seeded adversarial fault
// injector for the S86 machine — the "chaos engine".
//
// The split-memory defense rests on fragile state machinery: deliberately
// desynchronized ITLB/DTLB contents that the page-fault and debug handlers
// must keep consistent on every trap. Pewny et al. ("Breaking and Fixing
// Destructive Code Read Defenses") showed that exactly this class of
// TLB-incoherence scheme tends to fail under adversarial corner cases its
// authors never exercised. The injector manufactures those corner cases on
// purpose: spurious TLB evictions and flushes, stale entries that survive
// shootdowns, spurious debug traps, double-delivered page faults, DRAM
// bit flips, and context-switch storms — each class at an independently
// configurable rate, all drawn from one splitmix64 stream so runs are
// bit-for-bit reproducible per seed.
//
// The injector plugs into the machine as a cpu.ChaosAgent and into the
// scheduler as a kernel.Preempter; the invariant auditor (internal/core)
// uses StaleVPN to attribute TLB incoherence it heals to an injected
// hardware fault rather than to an engine bug.
package chaos

import (
	"sort"
	"sync"
	"time"

	"splitmem/internal/cpu"
	"splitmem/internal/mem"
	"splitmem/internal/snapshot"
	"splitmem/internal/telemetry"
)

// Config sets the per-fault-class injection rates. Every rate is a
// probability in [0, 1] evaluated at each opportunity for that class (per
// instruction, per invlpg, per flush entry, per page fault, or per
// scheduler check, as noted). The zero value injects nothing.
type Config struct {
	// Seed drives the injector's private splitmix64 stream; runs with equal
	// seeds and rates inject identical fault sequences.
	Seed uint64

	ITLBEvict     float64 // per instruction: evict one valid ITLB entry
	DTLBEvict     float64 // per instruction: evict one valid DTLB entry
	TLBFlush      float64 // per instruction: flush both TLBs entirely
	StaleTLB      float64 // per invlpg / per flush entry: the stale entry survives
	SpuriousDebug float64 // per instruction: raise a #DB nobody asked for
	DoubleFault   float64 // per resolved #PF: deliver the handler twice
	BitFlip       float64 // per instruction: flip one bit of an allocated frame
	Preempt       float64 // per scheduler check: force the timeslice to expire
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.ITLBEvict > 0 || c.DTLBEvict > 0 || c.TLBFlush > 0 ||
		c.StaleTLB > 0 || c.SpuriousDebug > 0 || c.DoubleFault > 0 ||
		c.BitFlip > 0 || c.Preempt > 0
}

// Defaults returns the default rate for every fault class — the rates the
// chaos test matrix enables one class at a time. They are tuned to fire
// many times over a typical attack scenario while leaving the guest enough
// forward progress to reach the exploit.
func Defaults() Config {
	return Config{
		ITLBEvict:     0.002,
		DTLBEvict:     0.002,
		TLBFlush:      0.0005,
		StaleTLB:      0.05,
		SpuriousDebug: 0.001,
		DoubleFault:   0.05,
		BitFlip:       0.00002,
		Preempt:       0.002,
	}
}

// Stats counts injected faults by class.
type Stats struct {
	ITLBEvictions  uint64
	DTLBEvictions  uint64
	TLBFlushes     uint64
	StaleRetained  uint64 // dropped invlpgs + entries retained across flushes
	SpuriousDebugs uint64
	DoubleFaults   uint64
	BitFlips       uint64
	Preempts       uint64
}

// Injector is the chaos engine. It implements cpu.ChaosAgent and
// kernel.Preempter.
type Injector struct {
	cfg   Config
	phys  *mem.Physical
	state uint64 // splitmix64 stream state
	stats Stats

	// stale records virtual page numbers whose TLB shootdown the injector
	// swallowed (dropped invlpg or flush retention). The invariant auditor
	// consults it to attribute incoherent entries it heals to hardware
	// faults instead of engine bugs. A later successful invlpg clears the
	// mark.
	stale map[uint32]bool
}

// New creates an injector over the machine's physical memory. The compile
// -time assertion that *Injector satisfies cpu.ChaosAgent lives here.
func New(cfg Config, phys *mem.Physical) *Injector {
	return &Injector{
		cfg:   cfg,
		phys:  phys,
		state: cfg.Seed ^ 0x9E3779B97F4A7C15, // never the all-zero stream
		stale: map[uint32]bool{},
	}
}

var _ cpu.ChaosAgent = (*Injector)(nil)

// Stats snapshots the per-class injection counters.
func (i *Injector) Stats() Stats { return i.stats }

// RegisterTelemetry registers the per-class injection counters as sampled
// gauges. Sampling happens at export time; injection paths are untouched.
func (i *Injector) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	for _, m := range []struct {
		name, help string
		v          *uint64
	}{
		{"splitmem_chaos_itlb_evictions_total", "injected spurious ITLB evictions", &i.stats.ITLBEvictions},
		{"splitmem_chaos_dtlb_evictions_total", "injected spurious DTLB evictions", &i.stats.DTLBEvictions},
		{"splitmem_chaos_tlb_flushes_total", "injected full TLB flushes", &i.stats.TLBFlushes},
		{"splitmem_chaos_stale_retained_total", "TLB shootdowns swallowed (stale entries retained)", &i.stats.StaleRetained},
		{"splitmem_chaos_spurious_debugs_total", "injected spurious debug traps", &i.stats.SpuriousDebugs},
		{"splitmem_chaos_double_faults_total", "injected double-delivered page faults", &i.stats.DoubleFaults},
		{"splitmem_chaos_bit_flips_total", "injected DRAM bit flips", &i.stats.BitFlips},
		{"splitmem_chaos_preempts_total", "injected forced preemptions", &i.stats.Preempts},
	} {
		v := m.v
		r.GaugeFunc(m.name, m.help, func() float64 { return float64(*v) })
	}
}

// next advances the splitmix64 stream.
func (i *Injector) next() uint64 {
	i.state += 0x9E3779B97F4A7C15
	z := i.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll draws once from the stream and reports whether an event with the
// given probability fires.
func (i *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(i.next()>>11)/(1<<53) < rate
}

// PreStep implements cpu.ChaosAgent: per-instruction fault classes.
func (i *Injector) PreStep(m *cpu.Machine) {
	if i.roll(i.cfg.ITLBEvict) {
		if n := m.ITLB.Valid(); n > 0 {
			m.ITLB.EvictNth(int(i.next() % uint64(n)))
			i.stats.ITLBEvictions++
		}
	}
	if i.roll(i.cfg.DTLBEvict) {
		if n := m.DTLB.Valid(); n > 0 {
			m.DTLB.EvictNth(int(i.next() % uint64(n)))
			i.stats.DTLBEvictions++
		}
	}
	if i.roll(i.cfg.TLBFlush) {
		m.FlushTLBs() // may itself retain stale entries, compounding faults
		i.stats.TLBFlushes++
	}
	if i.roll(i.cfg.BitFlip) {
		// Pick a frame and bit; FlipBit refuses unallocated frames so the
		// upset always lands in memory that is actually in use.
		f := uint32(1 + i.next()%uint64(i.phys.NumFrames()-1))
		bit := uint32(i.next() % (mem.PageSize * 8))
		if i.phys.FlipBit(f, bit) {
			i.stats.BitFlips++
		}
	}
}

// DropInvlpg implements cpu.ChaosAgent: stale-entry retention on invlpg.
func (i *Injector) DropInvlpg(vpn uint32) bool {
	if i.roll(i.cfg.StaleTLB) {
		i.stale[vpn] = true
		i.stats.StaleRetained++
		return true
	}
	delete(i.stale, vpn) // the shootdown went through; the page is coherent
	return false
}

// RetainOnFlush implements cpu.ChaosAgent: stale-entry retention across a
// full TLB flush.
func (i *Injector) RetainOnFlush(vpn uint32) bool {
	if i.roll(i.cfg.StaleTLB) {
		i.stale[vpn] = true
		i.stats.StaleRetained++
		return true
	}
	return false
}

// SpuriousDebugTrap implements cpu.ChaosAgent.
func (i *Injector) SpuriousDebugTrap() bool {
	if i.roll(i.cfg.SpuriousDebug) {
		i.stats.SpuriousDebugs++
		return true
	}
	return false
}

// DoubleFault implements cpu.ChaosAgent.
func (i *Injector) DoubleFault() bool {
	if i.roll(i.cfg.DoubleFault) {
		i.stats.DoubleFaults++
		return true
	}
	return false
}

// ForcePreempt implements kernel.Preempter: context-switch storms via
// forced timeslice expiry.
func (i *Injector) ForcePreempt() bool {
	if i.roll(i.cfg.Preempt) {
		i.stats.Preempts++
		return true
	}
	return false
}

// StaleVPN reports whether an injected fault may have left a stale TLB
// entry for vpn — the invariant auditor's attribution query.
func (i *Injector) StaleVPN(vpn uint32) bool { return i.stale[vpn] }

// EncodeState serializes the injector's stream position, counters and stale
// marks, so a restored run draws the identical remaining fault sequence. The
// stale set is written in sorted vpn order: the encoding must be a pure
// function of injector state, never of Go map iteration order.
func (i *Injector) EncodeState(w *snapshot.Writer) {
	w.U64(i.state)
	w.U64(i.stats.ITLBEvictions)
	w.U64(i.stats.DTLBEvictions)
	w.U64(i.stats.TLBFlushes)
	w.U64(i.stats.StaleRetained)
	w.U64(i.stats.SpuriousDebugs)
	w.U64(i.stats.DoubleFaults)
	w.U64(i.stats.BitFlips)
	w.U64(i.stats.Preempts)
	vpns := make([]uint32, 0, len(i.stale))
	for vpn := range i.stale {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(a, b int) bool { return vpns[a] < vpns[b] })
	w.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		w.U32(vpn)
	}
}

// DecodeState restores state serialized by EncodeState.
func (i *Injector) DecodeState(r *snapshot.Reader) error {
	i.state = r.U64()
	i.stats.ITLBEvictions = r.U64()
	i.stats.DTLBEvictions = r.U64()
	i.stats.TLBFlushes = r.U64()
	i.stats.StaleRetained = r.U64()
	i.stats.SpuriousDebugs = r.U64()
	i.stats.DoubleFaults = r.U64()
	i.stats.BitFlips = r.U64()
	i.stats.Preempts = r.U64()
	clear(i.stale)
	n := r.U32()
	for j := uint32(0); j < n; j++ {
		i.stale[r.U32()] = true
	}
	return r.Err()
}

// HostConfig sets injection rates for host-level (non-architectural) fault
// classes: the failures of the machinery around the simulator rather than of
// the simulated hardware. These draw from their own splitmix64 stream so
// enabling them never perturbs the architectural fault sequence of an
// Injector sharing the same seed.
type HostConfig struct {
	Seed        uint64
	WorkerKill  float64 // per checkpoint slice: panic the worker mid-job
	JournalTear float64 // per journal append: truncate the record partway (torn write)
}

// Enabled reports whether any host fault class has a nonzero rate.
func (c HostConfig) Enabled() bool { return c.WorkerKill > 0 || c.JournalTear > 0 }

// HostDefaults returns the default host-fault rates used by the recovery
// chaos cells: frequent enough to fire several times per job, survivable
// within a default retry budget.
func HostDefaults() HostConfig {
	return HostConfig{WorkerKill: 0.2, JournalTear: 0.25}
}

// HostStats counts injected host faults by class.
type HostStats struct {
	WorkerKills  uint64
	JournalTears uint64
}

// HostInjector injects host-level faults (worker kills, journal torn
// writes). Separate from Injector on purpose: its consumers live above the
// machine (the serve supervisor and journal), and its stream must not be
// entangled with the architectural one.
type HostInjector struct {
	cfg   HostConfig
	state uint64
	stats HostStats
}

// NewHost creates a host-fault injector.
func NewHost(cfg HostConfig) *HostInjector {
	return &HostInjector{cfg: cfg, state: cfg.Seed ^ 0xD1B54A32D192ED03}
}

// Stats snapshots the per-class host fault counters.
func (h *HostInjector) Stats() HostStats { return h.stats }

func (h *HostInjector) next() uint64 {
	h.state += 0x9E3779B97F4A7C15
	z := h.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (h *HostInjector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(h.next()>>11)/(1<<53) < rate
}

// KillWorker reports whether the worker should panic now (asked once per
// checkpoint slice). A nil injector never fires.
func (h *HostInjector) KillWorker() bool {
	if h == nil || !h.roll(h.cfg.WorkerKill) {
		return false
	}
	h.stats.WorkerKills++
	return true
}

// TearJournal reports whether the journal append in progress should be torn
// (asked once per append). A nil injector never fires.
func (h *HostInjector) TearJournal() bool {
	if h == nil || !h.roll(h.cfg.JournalTear) {
		return false
	}
	h.stats.JournalTears++
	return true
}

// ClusterConfig sets injection rates for cluster-level fault classes: the
// failures of the tier above any single replica — whole-replica crashes,
// probe loss (network partition from the gateway's point of view), and
// checkpoint images corrupted in transit during live migration. Like the
// host classes these draw from a private splitmix64 stream, so a cluster
// chaos cell never perturbs the architectural or host fault sequences.
type ClusterConfig struct {
	Seed              uint64
	ReplicaKill       float64 // per opportunity (e.g. per accepted job): hard-kill a replica
	ProbeDrop         float64 // per health probe: the probe times out / is partitioned away
	CheckpointCorrupt float64 // per checkpoint transfer: flip one bit of the shipped image
}

// Enabled reports whether any cluster fault class has a nonzero rate.
func (c ClusterConfig) Enabled() bool {
	return c.ReplicaKill > 0 || c.ProbeDrop > 0 || c.CheckpointCorrupt > 0
}

// ClusterDefaults returns the default cluster-fault rates used by the
// cluster chaos cells.
func ClusterDefaults() ClusterConfig {
	return ClusterConfig{ReplicaKill: 0.02, ProbeDrop: 0.1, CheckpointCorrupt: 0.25}
}

// ClusterStats counts injected cluster faults by class.
type ClusterStats struct {
	ReplicaKills          uint64
	ProbeDrops            uint64
	CheckpointCorruptions uint64
}

// ClusterInjector injects cluster-level faults. Unlike the other injectors
// it is mutex-guarded: the gateway's prober, migrator, and request handlers
// all consult it concurrently, and the cluster test lane runs under -race.
type ClusterInjector struct {
	mu    sync.Mutex
	cfg   ClusterConfig
	state uint64
	stats ClusterStats
}

// NewCluster creates a cluster-fault injector.
func NewCluster(cfg ClusterConfig) *ClusterInjector {
	return &ClusterInjector{cfg: cfg, state: cfg.Seed ^ 0xA0761D6478BD642F}
}

// Stats snapshots the per-class cluster fault counters.
func (ci *ClusterInjector) Stats() ClusterStats {
	if ci == nil {
		return ClusterStats{}
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return ci.stats
}

// next advances the stream. Callers hold mu.
func (ci *ClusterInjector) next() uint64 {
	ci.state += 0x9E3779B97F4A7C15
	z := ci.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll draws once. Callers hold mu.
func (ci *ClusterInjector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(ci.next()>>11)/(1<<53) < rate
}

// KillReplica reports whether a replica should be hard-killed at this
// opportunity. A nil injector never fires.
func (ci *ClusterInjector) KillReplica() bool {
	if ci == nil {
		return false
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if !ci.roll(ci.cfg.ReplicaKill) {
		return false
	}
	ci.stats.ReplicaKills++
	return true
}

// DropProbe reports whether this health probe should be swallowed —
// indistinguishable, to the prober, from a timeout or partition. A nil
// injector never fires.
func (ci *ClusterInjector) DropProbe() bool {
	if ci == nil {
		return false
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if !ci.roll(ci.cfg.ProbeDrop) {
		return false
	}
	ci.stats.ProbeDrops++
	return true
}

// Jitter is a seeded source of retry-delay jitter, shared by every
// backoff site in the tree (gateway shed-retry, worker restart backoff,
// loadtest Retry503). Synchronized retries are a fault amplifier: when one
// replica sheds, every client that hit it sleeps the same deterministic
// backoff and stampedes back in lockstep. Scale breaks the lockstep with
// "equal jitter": a base delay d maps to a uniform draw from [d/2, d), so
// the mean stays at 3d/4 while no two seeded sources agree on the phase.
// Mutex-guarded: retry loops on different goroutines share one source. A
// nil Jitter scales nothing (Scale returns d unchanged).
type Jitter struct {
	mu    sync.Mutex
	state uint64
}

// NewJitter creates a jitter source. The seed is XOR'd with a constant
// distinct from every other injector stream so a zero seed still draws a
// non-degenerate sequence.
func NewJitter(seed uint64) *Jitter {
	return &Jitter{state: seed ^ 0x6C62272E07BB0142}
}

// Scale maps a base delay to a uniform draw from [d/2, d). Non-positive
// delays and nil sources pass through unchanged.
func (j *Jitter) Scale(d time.Duration) time.Duration {
	if j == nil || d <= time.Nanosecond {
		return d
	}
	j.mu.Lock()
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	u := z ^ (z >> 31)
	j.mu.Unlock()
	half := d / 2
	return half + time.Duration(u%uint64(d-half))
}

// CorruptCheckpoint flips one stream-drawn bit of a checkpoint image in
// transit and reports whether it did. The flip position is drawn even for
// empty images (to keep the stream aligned across runs that differ only in
// checkpoint presence) but nothing is modified then. The snapshot trailer
// CRC must catch every corruption this injects — that is the property the
// cluster chaos cell pins. A nil injector never corrupts.
func (ci *ClusterInjector) CorruptCheckpoint(img []byte) bool {
	if ci == nil {
		return false
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if !ci.roll(ci.cfg.CheckpointCorrupt) {
		return false
	}
	pos := ci.next()
	if len(img) == 0 {
		return false
	}
	img[pos%uint64(len(img))] ^= 1 << (pos % 8)
	ci.stats.CheckpointCorruptions++
	return true
}
