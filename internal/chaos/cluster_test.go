package chaos

import (
	"bytes"
	"testing"
)

func TestClusterEnabled(t *testing.T) {
	if (ClusterConfig{}).Enabled() {
		t.Fatal("zero cluster config reports enabled")
	}
	if !(ClusterConfig{ProbeDrop: 0.1}).Enabled() {
		t.Fatal("nonzero cluster rate reports disabled")
	}
	if !ClusterDefaults().Enabled() {
		t.Fatal("cluster defaults report disabled")
	}
}

func TestClusterNilSafe(t *testing.T) {
	var ci *ClusterInjector
	if ci.KillReplica() || ci.DropProbe() || ci.CorruptCheckpoint([]byte{1, 2, 3}) {
		t.Fatal("nil cluster injector fired")
	}
	if ci.Stats() != (ClusterStats{}) {
		t.Fatal("nil cluster injector has stats")
	}
}

// Equal seeds must make identical kill/drop/corrupt decisions; different
// seeds must diverge over 10k draws at rate 0.5.
func TestClusterDeterministicStream(t *testing.T) {
	decisions := func(seed uint64) []bool {
		ci := NewCluster(ClusterConfig{Seed: seed, ProbeDrop: 0.5})
		out := make([]bool, 10_000)
		for j := range out {
			out[j] = ci.DropProbe()
		}
		return out
	}
	a, b, c := decisions(7), decisions(7), decisions(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("equal seeds diverged")
	}
	if same(a, c) {
		t.Fatal("different seeds agree on all 10k draws")
	}
}

// CorruptCheckpoint must change exactly one bit, never touch an empty
// image, and count only actual corruptions.
func TestCorruptCheckpointFlipsOneBit(t *testing.T) {
	ci := NewCluster(ClusterConfig{Seed: 42, CheckpointCorrupt: 1})
	img := bytes.Repeat([]byte{0xAA}, 512)
	orig := append([]byte(nil), img...)
	if !ci.CorruptCheckpoint(img) {
		t.Fatal("rate-1 corruption did not fire")
	}
	diff := 0
	for i := range img {
		for b := 0; b < 8; b++ {
			if (img[i]^orig[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bits, want exactly 1", diff)
	}
	if ci.CorruptCheckpoint(nil) {
		t.Fatal("corrupted an empty image")
	}
	if got := ci.Stats().CheckpointCorruptions; got != 1 {
		t.Fatalf("corruption counter %d, want 1", got)
	}
}

// The cluster stream is private: enabling cluster faults must not change
// the decisions of a host injector sharing the seed.
func TestClusterStreamIndependent(t *testing.T) {
	seq := func(withCluster bool) []bool {
		h := NewHost(HostConfig{Seed: 99, WorkerKill: 0.5})
		var ci *ClusterInjector
		if withCluster {
			ci = NewCluster(ClusterConfig{Seed: 99, ProbeDrop: 0.5})
		}
		out := make([]bool, 1000)
		for j := range out {
			ci.DropProbe()
			out[j] = h.KillWorker()
		}
		return out
	}
	a, b := seq(false), seq(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("host decision %d perturbed by cluster injector", i)
		}
	}
}
