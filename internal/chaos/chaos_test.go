package chaos

import (
	"testing"

	"splitmem/internal/cpu"
	"splitmem/internal/mem"
	"splitmem/internal/tlb"
)

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{DoubleFault: 0.1}).Enabled() {
		t.Fatal("nonzero rate reports disabled")
	}
	if !Defaults().Enabled() {
		t.Fatal("defaults report disabled")
	}
}

// Two injectors with the same seed and rates must make identical decisions;
// a different seed must diverge (with overwhelming probability over 10k
// draws at rate 0.5).
func TestDeterministicStream(t *testing.T) {
	decisions := func(seed uint64) []bool {
		i := New(Config{Seed: seed, DoubleFault: 0.5}, nil)
		out := make([]bool, 10_000)
		for j := range out {
			out[j] = i.DoubleFault()
		}
		return out
	}
	a, b, c := decisions(7), decisions(7), decisions(8)
	same := true
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("same seed diverged at draw %d", j)
		}
		same = same && a[j] == c[j]
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired < 4_000 || fired > 6_000 {
		t.Fatalf("rate 0.5 fired %d/10000 times", fired)
	}
}

func TestStaleAttribution(t *testing.T) {
	i := New(Config{Seed: 1, StaleTLB: 1}, nil) // every shootdown swallowed
	if !i.DropInvlpg(42) || !i.StaleVPN(42) {
		t.Fatal("dropped invlpg not recorded as stale")
	}
	if !i.RetainOnFlush(7) || !i.StaleVPN(7) {
		t.Fatal("flush retention not recorded as stale")
	}
	if i.StaleVPN(9) {
		t.Fatal("untouched vpn reported stale")
	}
	// A shootdown that goes through clears the mark.
	i.cfg.StaleTLB = 0
	if i.DropInvlpg(42) {
		t.Fatal("rate 0 still dropped the invlpg")
	}
	if i.StaleVPN(42) {
		t.Fatal("successful invlpg left the stale mark")
	}
	if s := i.Stats(); s.StaleRetained != 2 {
		t.Fatalf("StaleRetained=%d want 2", s.StaleRetained)
	}
}

func TestPreStepInjection(t *testing.T) {
	m, err := cpu.New(cpu.Config{PhysBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	i := New(Config{Seed: 3, ITLBEvict: 1, DTLBEvict: 1}, m.Phys)
	m.Chaos = i
	m.ITLB.Insert(1, tlb.Entry{Frame: 10})
	m.DTLB.Insert(1, tlb.Entry{Frame: 11})
	i.PreStep(m)
	if m.ITLB.Valid() != 0 || m.DTLB.Valid() != 0 {
		t.Fatalf("evictions did not fire: itlb=%d dtlb=%d", m.ITLB.Valid(), m.DTLB.Valid())
	}
	s := i.Stats()
	if s.ITLBEvictions != 1 || s.DTLBEvictions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBitFlipTargetsAllocatedFrames(t *testing.T) {
	phys, err := mem.NewPhysical(8 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := phys.Alloc()
	m, _ := cpu.New(cpu.Config{PhysBytes: 1 << 20})
	i := New(Config{Seed: 11, BitFlip: 1}, phys)
	// Every roll fires but only the one allocated frame can be hit; run a
	// few steps and require at least one recorded flip.
	for j := 0; j < 64 && i.Stats().BitFlips == 0; j++ {
		i.PreStep(m)
	}
	if i.Stats().BitFlips == 0 {
		t.Fatal("bit flips never landed despite rate 1")
	}
	changed := false
	for _, b := range phys.Frame(f) {
		if b != 0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("recorded flip but frame content unchanged")
	}
}
