package splitmem_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"splitmem"
)

// exitProg exits with status 7.
const exitProg = `
_start:
    mov ebx, 7
    mov eax, 1
    int 0x80
`

// helloProg writes "hello\n" to stdout and exits 0.
const helloProg = `
_start:
    mov ebx, 1          ; fd
    mov ecx, msg
    mov edx, 6          ; len
    mov eax, 4          ; write
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
msg: .asciz "hello\n"
`

// echoProg reads up to 64 bytes and writes them back, then exits.
const echoProg = `
_start:
    mov ebx, 0
    mov ecx, buf
    mov edx, 64
    mov eax, 3          ; read
    int 0x80
    mov edx, eax        ; n
    mov ebx, 1
    mov ecx, buf
    mov eax, 4          ; write
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf: .space 64
`

// victimProg reads attacker bytes into a stack buffer and then jumps into
// the buffer — the distilled essence of a code injection attack (stages 1-4
// of §3.2 with the hijack made explicit).
const victimProg = `
_start:
    sub esp, 1024
    mov ecx, esp        ; buf
    mov ebx, 0          ; fd 0
    mov edx, 1024
    mov eax, 3          ; read
    int 0x80
    jmp ecx             ; transfer control to the injected bytes
`

// shellcode builds an execve("/bin/sh") payload for injection at addr.
func shellcode(addr uint32) []byte {
	// mov ebx, path_addr; mov eax, 11; int 0x80; "/bin/sh\0"
	code := []byte{0xBB, 0, 0, 0, 0, 0xB8, 11, 0, 0, 0, 0xCD, 0x80}
	path := []byte("/bin/sh\x00")
	binary.LittleEndian.PutUint32(code[1:], addr+uint32(len(code)))
	return append(code, path...)
}

func run(t *testing.T, cfg splitmem.Config, src, input string) (*splitmem.Machine, *splitmem.Process) {
	t.Helper()
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(src, "guest")
	if err != nil {
		t.Fatal(err)
	}
	if input != "" {
		p.StdinWrite([]byte(input))
	}
	res := m.Run(50_000_000)
	if res.Reason == splitmem.ReasonBudget {
		t.Fatalf("guest did not finish within budget")
	}
	return m, p
}

func TestExitStatusAllProtections(t *testing.T) {
	for _, prot := range []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit, splitmem.ProtSplitNX,
	} {
		t.Run(prot.String(), func(t *testing.T) {
			_, p := run(t, splitmem.Config{Protection: prot}, exitProg, "")
			exited, status := p.Exited()
			if !exited || status != 7 {
				t.Fatalf("exited=%v status=%d", exited, status)
			}
		})
	}
}

func TestHelloWorldAllProtections(t *testing.T) {
	for _, prot := range []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit, splitmem.ProtSplitNX,
	} {
		t.Run(prot.String(), func(t *testing.T) {
			_, p := run(t, splitmem.Config{Protection: prot}, helloProg, "")
			if got := string(p.StdoutDrain()); got != "hello\n" {
				t.Fatalf("stdout = %q", got)
			}
			exited, status := p.Exited()
			if !exited || status != 0 {
				t.Fatalf("exited=%v status=%d", exited, status)
			}
		})
	}
}

func TestEchoUnderSplit(t *testing.T) {
	_, p := run(t, splitmem.Config{Protection: splitmem.ProtSplit}, echoProg, "ping-pong")
	if got := string(p.StdoutDrain()); got != "ping-pong" {
		t.Fatalf("stdout = %q", got)
	}
}

// findInjectionAddr runs the victim unprotected once to learn where the
// buffer lands (stack layout is deterministic without randomization).
func findInjectionAddr(t *testing.T) uint32 {
	t.Helper()
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtNone})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(victimProg, "probe")
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(10_000_000)
	if res.Reason != splitmem.ReasonWaitingInput {
		t.Fatalf("probe run: %v", res.Reason)
	}
	// The victim is blocked in read(); ECX holds the buffer address.
	return p.Ctx.R[1] // ECX
}

func TestInjectionSucceedsUnprotected(t *testing.T) {
	addr := findInjectionAddr(t)
	_, p := run(t, splitmem.Config{Protection: splitmem.ProtNone}, victimProg, string(shellcode(addr)))
	if !p.ShellSpawned() {
		t.Fatal("attack should succeed on the unprotected von Neumann machine")
	}
}

func TestInjectionBlockedByNX(t *testing.T) {
	addr := findInjectionAddr(t)
	m, p := run(t, splitmem.Config{Protection: splitmem.ProtNX}, victimProg, string(shellcode(addr)))
	if p.ShellSpawned() {
		t.Fatal("NX should block stack execution")
	}
	killed, sig := p.Killed()
	if !killed || sig != splitmem.SIGSEGV {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	if len(m.EventsOf(splitmem.EvInjectionDetected)) == 0 {
		t.Fatal("expected an injection-detected event")
	}
}

func TestInjectionBlockedBySplitBreak(t *testing.T) {
	addr := findInjectionAddr(t)
	m, p := run(t, splitmem.Config{Protection: splitmem.ProtSplit, Response: splitmem.Break},
		victimProg, string(shellcode(addr)))
	if p.ShellSpawned() {
		t.Fatal("split memory should make injected code unfetchable")
	}
	killed, sig := p.Killed()
	if !killed || sig != splitmem.SIGILL {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	evs := m.EventsOf(splitmem.EvInjectionDetected)
	if len(evs) == 0 {
		t.Fatal("expected an injection-detected event")
	}
	// The event's dump must contain the attacker's bytes (they are on the
	// data twin), starting at the hijacked EIP.
	if evs[0].Addr != addr {
		t.Fatalf("detected at %#x, injected at %#x", evs[0].Addr, addr)
	}
	if !bytes.HasPrefix(shellcode(addr), evs[0].Data[:5]) {
		t.Fatalf("dump % x does not match shellcode", evs[0].Data)
	}
}

func TestInjectionObservedMode(t *testing.T) {
	addr := findInjectionAddr(t)
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, Response: splitmem.Observe})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(victimProg, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite(shellcode(addr))
	res := m.Run(50_000_000)
	if res.Reason != splitmem.ReasonWaitingInput {
		t.Fatalf("run: %v", res.Reason)
	}
	if !p.ShellSpawned() {
		t.Fatal("observe mode should let the attack continue to a shell")
	}
	if len(m.EventsOf(splitmem.EvInjectionObserved)) == 0 {
		t.Fatal("expected injection-observed event")
	}
	// Interact with the attacker's shell; Sebek logging must capture it.
	p.StdinWrite([]byte("id\n"))
	m.Run(1_000_000)
	out := string(p.StdoutDrain())
	if !strings.Contains(out, "uid=0(root)") {
		t.Fatalf("shell output: %q", out)
	}
	var logged bool
	for _, ev := range m.EventsOf(splitmem.EvSebekLine) {
		if strings.Contains(ev.Text, "id") {
			logged = true
		}
	}
	if !logged {
		t.Fatal("sebek should log the attacker's keystrokes")
	}
}

func TestInjectionForensicsMode(t *testing.T) {
	addr := findInjectionAddr(t)
	m, err := splitmem.New(splitmem.Config{
		Protection:        splitmem.ProtSplit,
		Response:          splitmem.Forensics,
		ForensicShellcode: splitmem.ExitShellcode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(victimProg, "victim")
	if err != nil {
		t.Fatal(err)
	}
	sc := shellcode(addr)
	p.StdinWrite(sc)
	res := m.Run(50_000_000)
	if res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("run: %v", res.Reason)
	}
	// The forensic exit(0) shellcode replaced the payload: graceful exit.
	exited, status := p.Exited()
	if !exited || status != 0 {
		t.Fatalf("exited=%v status=%d (forensic shellcode should exit(0))", exited, status)
	}
	dumps := m.EventsOf(splitmem.EvForensicDump)
	if len(dumps) == 0 {
		t.Fatal("expected a forensic dump")
	}
	if !bytes.HasPrefix(sc, dumps[0].Data[:10]) {
		t.Fatalf("dump % x should be the injected payload", dumps[0].Data)
	}
	if dumps[0].Addr != addr {
		t.Fatalf("dump EIP %#x want %#x", dumps[0].Addr, addr)
	}
}

// TestSplitTransparency: a nontrivial program must produce identical output
// protected and unprotected (the virtual Harvard architecture is invisible
// to legitimate code).
func TestSplitTransparency(t *testing.T) {
	prog := `
; compute the 20th fibonacci number and print its digits
_start:
    mov eax, 0
    mov ebx, 1
    mov ecx, 20
fib:
    mov edx, eax
    add edx, ebx
    mov eax, ebx
    mov ebx, edx
    dec ecx
    cmp ecx, 0
    jnz fib
    ; eax = fib(20) = 6765; convert to decimal at buf+8 backwards
    mov esi, buf
    add esi, 8
    mov ecx, 0          ; digit count
digits:
    mov edx, eax
    mod edx, ten
    add edx, '0'
    storeb [esi], edx
    sub esi, 1
    inc ecx
    div eax, ten
    cmp eax, 0
    jnz digits
    ; write(1, esi+1, ecx)
    mov edx, ecx
    mov ecx, esi
    inc ecx
    mov ebx, 1
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf: .space 16
`
	// The program needs "ten" as a register value; patch via .equ? S86 div
	// takes registers, so provide the constant in a register instead.
	prog = strings.ReplaceAll(prog, "mod edx, ten", "mov edi, 10\n    mod edx, edi")
	prog = strings.ReplaceAll(prog, "div eax, ten", "div eax, edi")

	var outputs []string
	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
		_, p := run(t, splitmem.Config{Protection: prot}, prog, "")
		exited, status := p.Exited()
		if !exited || status != 0 {
			t.Fatalf("%v: exited=%v status=%d killed=%v", prot, exited, status, p.Alive())
		}
		outputs = append(outputs, string(p.StdoutDrain()))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("outputs differ: %q vs %q", outputs[0], outputs[1])
	}
	if outputs[0] != "6765" {
		t.Fatalf("fib output %q", outputs[0])
	}
}

// TestForkPipesUnderSplit exercises fork, pipes and waitpid under split
// memory: the parent sends a token to the child and gets it back
// incremented.
func TestForkPipesUnderSplit(t *testing.T) {
	_, p := run(t, splitmem.Config{Protection: splitmem.ProtSplit}, cleanPipeProg, "")
	exited, status := p.Exited()
	if !exited || status != 0 {
		killed, sig := p.Killed()
		t.Fatalf("exited=%v status=%d killed=%v sig=%v", exited, status, killed, sig)
	}
	if got := string(p.StdoutDrain()); got != "B" {
		t.Fatalf("stdout %q want %q", got, "B")
	}
}

const cleanPipeProg = `
.equ SYS_EXIT, 1
.equ SYS_FORK, 2
.equ SYS_READ, 3
.equ SYS_WRITE, 4
.equ SYS_WAITPID, 7
.equ SYS_PIPE, 42
_start:
    mov eax, SYS_PIPE
    mov ebx, fds1
    int 0x80
    mov eax, SYS_PIPE
    mov ebx, fds2
    int 0x80
    mov eax, SYS_FORK
    int 0x80
    cmp eax, 0
    jz child

    ; parent: write(fds1[1], tok, 1)
    mov esi, fds1
    load ebx, [esi+4]
    mov ecx, tok
    mov edx, 1
    mov eax, SYS_WRITE
    int 0x80
    ; read(fds2[0], tok2, 1)
    mov esi, fds2
    load ebx, [esi]
    mov ecx, tok2
    mov edx, 1
    mov eax, SYS_READ
    int 0x80
    ; waitpid(-1, 0)
    mov eax, SYS_WAITPID
    mov ebx, -1
    mov ecx, 0
    int 0x80
    ; write(1, tok2, 1)
    mov ebx, 1
    mov ecx, tok2
    mov edx, 1
    mov eax, SYS_WRITE
    int 0x80
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

child:
    ; read(fds1[0], tok2, 1)
    mov esi, fds1
    load ebx, [esi]
    mov ecx, tok2
    mov edx, 1
    mov eax, SYS_READ
    int 0x80
    ; tok2[0]++
    mov esi, tok2
    loadb eax, [esi]
    inc eax
    storeb [esi], eax
    ; write(fds2[1], tok2, 1)
    mov esi, fds2
    load ebx, [esi+4]
    mov ecx, tok2
    mov edx, 1
    mov eax, SYS_WRITE
    int 0x80
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
.data
fds1: .word 0, 0
fds2: .word 0, 0
tok:  .asciz "A"
tok2: .space 4
`

// TestTLBDesyncVisible verifies the architectural signature of the split:
// after running under split memory, the ITLB and DTLB held different frames
// for the same virtual page at detection time (checked via engine stats).
func TestTLBDesyncVisible(t *testing.T) {
	// A program with explicit guest data accesses (stack pushes and .data
	// loads) so both the data-TLB and instruction-TLB load paths run.
	prog := `
_start:
    push ebx
    pop ebx
    mov esi, msg
    loadb eax, [esi]
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
msg: .asciz "x"
`
	m, _ := run(t, splitmem.Config{Protection: splitmem.ProtSplit}, prog, "")
	st := m.Stats()
	if st.Split.TotalSplits == 0 {
		t.Fatal("no pages were split")
	}
	if st.Split.DataTLBLoads == 0 || st.Split.CodeTLBLoads == 0 {
		t.Fatalf("TLB loads: data=%d code=%d", st.Split.DataTLBLoads, st.Split.CodeTLBLoads)
	}
	if st.DebugTraps == 0 {
		t.Fatal("instruction-TLB loads require single-step debug traps")
	}
}

// TestSplitOverheadExists: split memory must cost cycles versus unprotected
// (sanity for the performance experiments).
func TestSplitOverheadExists(t *testing.T) {
	var cycles [2]uint64
	for i, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
		m, _ := run(t, splitmem.Config{Protection: prot}, helloProg, "")
		cycles[i] = m.Cycles()
	}
	if cycles[1] <= cycles[0] {
		t.Fatalf("split (%d cycles) should cost more than unprotected (%d)", cycles[1], cycles[0])
	}
}
