package splitmem_test

// Tests for the features the paper sketches but does not prototype:
// the recovery response mode (§4.5), validated dynamic library loading
// (§4.3), and the software-managed-TLB realization (§4.7), plus the
// documented limitations of §7 demonstrated as executable facts.

import (
	"strings"
	"testing"

	"splitmem"
	"splitmem/internal/guest"
	"splitmem/internal/loader"
)

// victimWithRecovery registers a recovery handler, then runs the classic
// read-and-jump injection. Under Recovery mode, the kernel transfers
// control to the handler instead of crashing.
const victimWithRecovery = `
_start:
    mov ebx, recover_cb
    mov eax, 200           ; register_recovery(handler)
    int 0x80
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3             ; read the "attack"
    int 0x80
    jmp ecx                ; hijack

recover_cb:
    ; graceful recovery: report and exit cleanly
    mov ebx, 1
    mov ecx, msg
    mov edx, 10
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
msg: .asciz "recovered\n"
`

func TestRecoveryMode(t *testing.T) {
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, Response: splitmem.Recovery})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(victimWithRecovery, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite([]byte{0x90, 0x90, 0xCD, 0x80}) // injected bytes
	res := m.Run(50_000_000)
	if res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("run: %v", res.Reason)
	}
	exited, status := p.Exited()
	if !exited || status != 0 {
		killed, sig := p.Killed()
		t.Fatalf("exited=%v status=%d killed=%v sig=%v", exited, status, killed, sig)
	}
	if got := string(p.StdoutDrain()); !strings.Contains(got, "recovered") {
		t.Fatalf("stdout=%q", got)
	}
	if len(m.EventsOf(splitmem.EvInjectionDetected)) == 0 {
		t.Fatal("detection event missing")
	}
}

func TestRecoveryModeWithoutHandlerKills(t *testing.T) {
	// Same attack, recovery mode, but the program never registered: falls
	// back to break behavior.
	src := `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, Response: splitmem.Recovery})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(src, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite([]byte{0x90})
	m.Run(50_000_000)
	killed, sig := p.Killed()
	if !killed || sig != splitmem.SIGILL {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
}

// dlloadProg loads a module at 0x50000000 after verifying its digest, then
// calls it; the module returns 123 in EAX which becomes the exit status.
const dlloadProg = `
_start:
    mov ebx, 0x50000000    ; destination
    mov ecx, modlen
    load ecx, [ecx]
    mov edx, digest
    mov eax, 210           ; dlload(dest, len, digest)
    int 0x80
    cmp eax, 0
    jnz fail
    mov eax, 0x50000000
    call eax               ; run the verified module
    mov ebx, eax
    mov eax, 1
    int 0x80
fail:
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
modlen: .word 0            ; patched by the host via stdin protocol? no: fixed below
digest: .word 0, 0
`

// buildModule assembles the plugin: mov eax, 123; ret.
func buildModule(t *testing.T) []byte {
	t.Helper()
	prog, err := splitmem.Assemble(`
.text 0x50000000
    mov eax, 123
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Sections[0].Data
}

func TestDlloadVerifiedModule(t *testing.T) {
	module := buildModule(t)
	digest := loader.FNV1a(module)

	// Patch modlen and digest into the program source.
	src := strings.Replace(dlloadProg, "modlen: .word 0            ; patched by the host via stdin protocol? no: fixed below",
		"modlen: .word "+itoa(len(module)), 1)
	src = strings.Replace(src, "digest: .word 0, 0",
		"digest: .word "+itoa(int(uint32(digest)))+", "+itoa(int(uint32(digest>>32))), 1)

	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
		m, err := splitmem.New(splitmem.Config{Protection: prot})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(src, "dlload")
		if err != nil {
			t.Fatal(err)
		}
		p.StdinWrite(module) // the module "file" arrives over the stream
		res := m.Run(50_000_000)
		if res.Reason != splitmem.ReasonAllDone {
			t.Fatalf("%v: run %v", prot, res.Reason)
		}
		exited, status := p.Exited()
		if !exited || status != 123 {
			killed, sig := p.Killed()
			t.Fatalf("%v: exited=%v status=%d killed=%v sig=%v", prot, exited, status, killed, sig)
		}
	}
}

func TestDlloadRejectsTamperedModule(t *testing.T) {
	module := buildModule(t)
	digest := loader.FNV1a(module)
	// The attacker tampers with the module in flight.
	evil := append([]byte(nil), module...)
	evil[0] = 0x90

	src := strings.Replace(dlloadProg, "modlen: .word 0            ; patched by the host via stdin protocol? no: fixed below",
		"modlen: .word "+itoa(len(module)), 1)
	src = strings.Replace(src, "digest: .word 0, 0",
		"digest: .word "+itoa(int(uint32(digest)))+", "+itoa(int(uint32(digest>>32))), 1)

	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(src, "dlload-evil")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite(evil)
	m.Run(50_000_000)
	_, status := p.Exited()
	if int32(status) != -13 { // -EACCES propagated by the guest
		t.Fatalf("status=%d want -13", int32(status))
	}
	var rejected bool
	for _, ev := range m.EventsOf(splitmem.EvLibraryLoad) {
		if strings.Contains(ev.Text, "REJECTED") {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("no rejection event")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [16]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestSoftTLBCorrectAndFaster: the §4.7 software-TLB realization must be
// functionally identical and measurably cheaper than the x86 trick.
func TestSoftTLBCorrectAndFaster(t *testing.T) {
	prog := guest.WithCRT(`
_start:
    mov eax, 32
    push eax
    call malloc
    add esp, 4
    mov esi, eax
    mov eax, msg
    push eax
    push esi
    call strcpy
    add esp, 8
    push esi
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
msg: .asciz "soft-tlb-ok\n"
`)
	var cycles [2]uint64
	for i, soft := range []bool{false, true} {
		m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, SoftTLB: soft})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(prog, "soft")
		if err != nil {
			t.Fatal(err)
		}
		m.Run(50_000_000)
		if got := string(p.StdoutDrain()); got != "soft-tlb-ok\n" {
			t.Fatalf("soft=%v: output %q", soft, got)
		}
		cycles[i] = m.Cycles()
	}
	if cycles[1] >= cycles[0] {
		t.Fatalf("soft-TLB loads (%d cycles) should beat the x86 trick (%d)", cycles[1], cycles[0])
	}
	t.Logf("x86 trick: %d cycles; soft-TLB: %d cycles (%.1f%% saved)",
		cycles[0], cycles[1], 100*(1-float64(cycles[1])/float64(cycles[0])))
}

// TestSoftTLBStillBlocksInjection: the cheaper loading path must preserve
// the security property.
func TestSoftTLBStillBlocksInjection(t *testing.T) {
	src := `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, SoftTLB: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(src, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite([]byte{0xCD, 0x80})
	m.Run(50_000_000)
	if p.ShellSpawned() {
		t.Fatal("injection succeeded under soft-TLB split memory")
	}
	if killed, sig := p.Killed(); !killed || sig != splitmem.SIGILL {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
}

// TestTraceTail: the execution tracer records the retired instruction
// stream, ending at the hijacked address when a victim dies.
func TestTraceTail(t *testing.T) {
	src := `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, TraceDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(src, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite([]byte{0x90})
	m.Run(10_000_000)
	tail := m.TraceTail()
	if !strings.Contains(tail, "jmp ecx") {
		t.Fatalf("trace should contain the hijacking jump:\n%s", tail)
	}
	if !strings.Contains(tail, "int 0x80") {
		t.Fatalf("trace should contain the read syscall:\n%s", tail)
	}
	// A machine without tracing returns an empty tail.
	m2, _ := splitmem.New(splitmem.Config{})
	if m2.TraceTail() != "" {
		t.Fatal("tail should be empty without TraceDepth")
	}
}

// TestLazyTwins: the demand-paged twin optimization (§5.1) must preserve
// behavior and protection while allocating far fewer frames.
func TestLazyTwins(t *testing.T) {
	// A data-heavy program: 64 KiB bss that is written but never executed.
	prog := `
_start:
    mov esi, big
    mov ecx, 65536
fill:
    storeb [esi], ecx
    inc esi
    dec ecx
    cmp ecx, 0
    jnz fill
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
big: .space 65536
`
	var allocs [2]uint64
	for i, lazy := range []bool{false, true} {
		m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, LazyTwins: lazy})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(prog, "bigdata")
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run(0)
		if res.Reason != splitmem.ReasonAllDone {
			t.Fatalf("lazy=%v: %v", lazy, res.Reason)
		}
		if exited, status := p.Exited(); !exited || status != 0 {
			t.Fatalf("lazy=%v: exited=%v status=%d", lazy, exited, status)
		}
		allocs[i] = m.CPU().Phys.Allocations()
	}
	// The lazy variant must allocate at least 14 fewer frames (the 16 bss
	// pages' twins minus slack for the data/stack pages it still touches).
	if allocs[1]+14 > allocs[0] {
		t.Fatalf("lazy=%d frames vs eager=%d: no saving", allocs[1], allocs[0])
	}
	t.Logf("frames allocated: eager=%d lazy=%d", allocs[0], allocs[1])
}

// TestLazyTwinsStillBlockInjection: the deferred twin is synthesized at
// attack time, never copied from the (attacker-controlled) data twin.
func TestLazyTwinsStillBlockInjection(t *testing.T) {
	src := `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`
	for _, mode := range []splitmem.ResponseMode{splitmem.Break, splitmem.Observe} {
		m, err := splitmem.New(splitmem.Config{
			Protection: splitmem.ProtSplit, Response: mode, LazyTwins: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(src, "victim")
		if err != nil {
			t.Fatal(err)
		}
		p.StdinWrite([]byte{0xBB, 1, 0, 0, 0, 0xB8, 11, 0, 0, 0, 0xCD, 0x80})
		m.Run(50_000_000)
		if len(m.EventsOf(splitmem.EvInjectionDetected)) == 0 {
			t.Fatalf("mode=%v: no detection", mode)
		}
		if mode == splitmem.Break {
			if killed, sig := p.Killed(); !killed || sig != splitmem.SIGILL {
				t.Fatalf("mode=%v: killed=%v sig=%v", mode, killed, sig)
			}
		}
	}
}
