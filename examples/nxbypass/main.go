// NX bypass: the re-protection attack from §2 ([4], Skape & Skywing). The
// attacker cannot execute the injected buffer directly under NX, so the
// crafted stack first returns into the binary's own make_executable()
// helper (an mprotect wrapper), flips the buffer executable, and only then
// jumps to it. The execute-disable bit is defeated; split memory is not,
// because no permission change can move data-twin bytes into a code twin.
//
//	go run ./examples/nxbypass
package main

import (
	"fmt"
	"log"

	"splitmem"
	"splitmem/internal/attacks"
)

func main() {
	fmt.Println("mprotect-based NX bypass (return-into-libc style):")
	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit} {
		r, err := attacks.RunNXBypass(splitmem.Config{Protection: prot})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "attack FOILED"
		if r.Succeeded() {
			verdict = "attack SUCCEEDED"
		}
		fmt.Printf("  %-9s -> %-16s (%s)\n", prot, verdict, r)
	}
	fmt.Println()
	fmt.Println("This is the paper's second motivating weakness of page-level")
	fmt.Println("execute-disable schemes: a determined attacker re-enables execution")
	fmt.Println("with code already present in the process. The virtual Harvard")
	fmt.Println("architecture removes the 'feature' the attack depends on entirely.")
}
