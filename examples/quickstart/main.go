// Quickstart: assemble a tiny guest program, run it on the virtual-Harvard
// (split memory) machine, and watch a straightforward code injection fail.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"splitmem"
)

// victim reads attacker-controlled bytes into a stack buffer and jumps into
// it — the four stages of a code injection attack (§3.2) distilled.
const victim = `
_start:
    sub esp, 1024
    mov ecx, esp        ; buffer
    mov ebx, 0          ; stdin
    mov edx, 1024
    mov eax, 3          ; read(0, buffer, 1024)
    int 0x80
    jmp ecx             ; hijacked control transfer
`

// shellcode builds execve("/bin/sh") machine code for the given address.
func shellcode(addr uint32) []byte {
	code := []byte{0xBB, 0, 0, 0, 0, 0xB8, 11, 0, 0, 0, 0xCD, 0x80}
	binary.LittleEndian.PutUint32(code[1:], addr+uint32(len(code)))
	return append(code, []byte("/bin/sh\x00")...)
}

func attack(prot splitmem.Protection) {
	// Probe run to learn where the buffer lands (deterministic layout).
	probe := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtNone})
	pp, err := probe.LoadAsm(victim, "probe")
	if err != nil {
		log.Fatal(err)
	}
	probe.Run(0)
	bufAddr := pp.Ctx.R[1] // ECX at the blocking read

	m := splitmem.MustNew(splitmem.Config{Protection: prot})
	p, err := m.LoadAsm(victim, "victim")
	if err != nil {
		log.Fatal(err)
	}
	p.StdinWrite(shellcode(bufAddr))
	m.Run(0)

	fmt.Printf("%-8s: ", prot)
	switch {
	case p.ShellSpawned():
		fmt.Println("ATTACK SUCCEEDED - attacker has a shell")
	default:
		killed, sig := p.Killed()
		fmt.Printf("attack foiled (killed=%v %v)", killed, sig)
		if evs := m.EventsOf(splitmem.EvInjectionDetected); len(evs) > 0 {
			fmt.Printf("; injection detected at %#08x", evs[0].Addr)
			if len(evs[0].Data) >= 8 {
				fmt.Printf(", injected bytes: % x...", evs[0].Data[:8])
			}
		}
		fmt.Println()
	}
	st := m.Stats()
	fmt.Printf("          cycles=%d  split pages=%d  dTLB loads=%d  iTLB loads=%d\n",
		st.Cycles, st.Split.TotalSplits, st.Split.DataTLBLoads, st.Split.CodeTLBLoads)
}

func main() {
	fmt.Println("The same code injection against three memory architectures:")
	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit} {
		attack(prot)
	}
}
