// Mixed pages: the paper's Fig. 1b motivation. A JIT-style region holds
// code and data on the same page, so it must stay executable and the
// execute-disable bit cannot protect it. Split memory keeps the page's code
// and data views physically apart and stops the injection — including in
// the "supplement NX" deployment that splits only mixed pages (§4.2.1).
//
//	go run ./examples/mixedpages
package main

import (
	"fmt"
	"log"

	"splitmem"
	"splitmem/internal/attacks"
)

func main() {
	fmt.Println("Injecting code into a mixed code+data (rwx) page:")
	cases := []struct {
		name string
		cfg  splitmem.Config
	}{
		{"unprotected          ", splitmem.Config{Protection: splitmem.ProtNone}},
		{"execute-disable (NX) ", splitmem.Config{Protection: splitmem.ProtNX}},
		{"split memory         ", splitmem.Config{Protection: splitmem.ProtSplit}},
		{"split mixed-only + NX", splitmem.Config{Protection: splitmem.ProtSplitNX, MixedOnly: true}},
	}
	for _, c := range cases {
		r, err := attacks.RunMixedPage(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %s\n", c.name, r)
	}
	fmt.Println()
	fmt.Println("NX is architecturally blind here: the page must be executable, so")
	fmt.Println("the injected bytes are executable too. Under split memory the bytes")
	fmt.Println("only ever reach the data twin, and the fetch still sees the original")
	fmt.Println("code twin.")
}
