// Telemetry: run the quickstart injection against an instrumented machine,
// print the fault-handling latency profile and split-activity heatmap, and
// export the episode timeline as Chrome trace_event JSON — open the written
// trace.json in https://ui.perfetto.dev to see each itlb-load and dtlb-load
// episode on a per-page track.
//
//	go run ./examples/telemetry
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"

	"splitmem"
)

// victim stores and loads on its stack (data-TLB traffic), then reads
// attacker bytes into the buffer and jumps into it.
const victim = `
_start:
    sub esp, 1024
    mov ecx, esp        ; buffer
    store [esp], ecx
    load edx, [esp]
    mov ebx, 0          ; stdin
    mov edx, 1024
    mov eax, 3          ; read(0, buffer, 1024)
    int 0x80
    jmp ecx             ; hijacked control transfer
`

func main() {
	// Probe run to learn where the buffer lands (deterministic layout).
	probe := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtNone})
	pp, err := probe.LoadAsm(victim, "probe")
	if err != nil {
		log.Fatal(err)
	}
	probe.Run(0)
	bufAddr := pp.Ctx.R[1]

	shellcode := []byte{0xBB, 0, 0, 0, 0, 0xB8, 11, 0, 0, 0, 0xCD, 0x80}
	binary.LittleEndian.PutUint32(shellcode[1:], bufAddr+uint32(len(shellcode)))
	shellcode = append(shellcode, []byte("/bin/sh\x00")...)

	m := splitmem.MustNew(splitmem.Config{
		Protection: splitmem.ProtSplit,
		Response:   splitmem.Observe,
		Telemetry:  true,
		TraceDepth: 32,
	})
	p, err := m.LoadAsm(victim, "victim")
	if err != nil {
		log.Fatal(err)
	}
	p.StdinWrite(shellcode)
	m.Run(0)

	hub := m.Telemetry()
	reg := hub.Registry()
	fmt.Println("fault-handling latency (simulated cycles):")
	for _, name := range []string{
		"splitmem_cpu_pf_handler_cycles",
		"splitmem_split_itlb_load_cycles",
		"splitmem_split_dtlb_load_cycles",
		"splitmem_split_tf_roundtrip_cycles",
	} {
		h := reg.LookupHistogram(name)
		if h == nil || h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-38s count=%-4d mean=%-7.1f max=%d\n", name, h.Count(), h.Mean(), h.Max())
	}

	fmt.Println("\nhottest split pages:")
	if v := reg.LookupCounterVec("splitmem_split_page_loads_total"); v != nil {
		for _, it := range v.Top(5) {
			fmt.Printf("  %s  %d TLB loads\n", it.Label, it.Count)
		}
	}

	if evs := m.EventsOf(splitmem.EvInjectionDetected); len(evs) > 0 {
		fmt.Printf("\ninjection detected at %#08x; instructions leading up to it:\n%s",
			evs[0].Addr, evs[0].Trace)
	}

	out, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteTrace(out); err != nil {
		log.Fatal(err)
	}
	out.Close()
	fmt.Println("\nwrote trace.json — open it in https://ui.perfetto.dev")
}
