// Plugins: validated dynamic loading under split memory (§4.3). A server
// that accepts plugins over the network cannot normally execute them under
// split memory — received bytes only ever reach data twins. The dlload
// syscall is the sanctioned path: the kernel verifies the module against a
// known digest (the DigSig/VerifiedExec stand-in) and only then installs it
// on both twins. A tampered module is rejected; a plain injected one is
// unfetchable.
//
//	go run ./examples/plugins
package main

import (
	"fmt"
	"log"
	"strings"

	"splitmem"
	"splitmem/internal/guest"
	"splitmem/internal/loader"
)

const hostProg = `
_start:
    mov ebx, 0x50000000    ; load address
    mov ecx, MODLEN
    mov edx, digest
    mov eax, 210           ; dlload(dest, len, &digest)
    int 0x80
    cmp eax, 0
    jnz load_failed
    mov eax, 0x50000000
    call eax               ; run the plugin; returns its result in eax
    push eax
    mov eax, okmsg
    push eax
    call print
    add esp, 4
    pop ebx
    mov eax, 1
    int 0x80               ; exit(plugin result)
load_failed:
    push eax
    mov eax, badmsg
    push eax
    call print
    add esp, 4
    pop ebx
    mov eax, 1
    int 0x80
.data
okmsg:  .asciz "plugin verified and executed\n"
badmsg: .asciz "plugin REJECTED by signature check\n"
digest: .word DIG_LO, DIG_HI
`

const pluginSrc = `
.text 0x50000000
    mov eax, 42            ; the plugin's work
    ret
`

func run(tampered bool) {
	plugin, err := splitmem.Assemble(pluginSrc)
	if err != nil {
		log.Fatal(err)
	}
	module := plugin.Sections[0].Data
	digest := loader.FNV1a(module)

	src := hostProg
	src = strings.ReplaceAll(src, "MODLEN", fmt.Sprint(len(module)))
	src = strings.ReplaceAll(src, "DIG_LO", fmt.Sprint(uint32(digest)))
	src = strings.ReplaceAll(src, "DIG_HI", fmt.Sprint(uint32(digest>>32)))

	m := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtSplit})
	host, err := m.LoadAsm(guest.WithCRT(src), "plugin-host")
	if err != nil {
		log.Fatal(err)
	}
	sent := append([]byte(nil), module...)
	if tampered {
		sent[0] = 0x90 // a supply-chain attacker flips a byte in flight
	}
	host.StdinWrite(sent)
	m.Run(0)
	fmt.Print(string(host.StdoutDrain()))
	if exited, status := host.Exited(); exited {
		fmt.Printf("  host exit status: %d\n", int32(status))
	}
	for _, ev := range m.EventsOf(splitmem.EvLibraryLoad) {
		fmt.Printf("  [kernel] %s\n", ev.Text)
	}
	fmt.Println()
}

func main() {
	fmt.Println("-- genuine plugin --")
	run(false)
	fmt.Println("-- tampered plugin --")
	run(true)
}
