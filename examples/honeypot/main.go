// Honeypot: run the wu-ftpd-style server in observe mode (the attack is
// allowed to continue under Sebek-style keystroke logging) and in forensics
// mode (the injected shellcode is dumped and replaced with exit(0)),
// reproducing the paper's Fig. 5 demonstrations.
//
//	go run ./examples/honeypot
package main

import (
	"fmt"
	"log"

	"splitmem"
	"splitmem/internal/attacks"
)

func main() {
	for _, mode := range []splitmem.ResponseMode{splitmem.Observe, splitmem.Forensics} {
		r, err := attacks.RunFig5(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(attacks.RenderFig5(r))
	}
	fmt.Println("In observe mode the attacker believes the exploit worked; every")
	fmt.Println("keystroke was recorded. In forensics mode the system captured the")
	fmt.Println("shellcode at the exact moment it was about to execute and ran")
	fmt.Println("exit(0) in its place.")
}
