// Incident report: the operations surface of the split-memory kernel. A
// victim is exploited under forensics mode while an execution trace rides
// along; afterwards the host assembles an incident report — JSONL events
// for a collector, the captured shellcode, and the instruction trail that
// led to the hijack.
//
//	go run ./examples/incident
package main

import (
	"fmt"
	"log"

	"splitmem"
)

const victim = `
_start:
    mov ebx, 0
    mov ecx, buf
    mov edx, 128
    mov eax, 3          ; read "network" input
    int 0x80
    mov ecx, buf
    jmp ecx             ; corrupted dispatch
.data
buf: .space 128
`

func main() {
	m := splitmem.MustNew(splitmem.Config{
		Protection:        splitmem.ProtSplit,
		Response:          splitmem.Forensics,
		ForensicShellcode: splitmem.ExitShellcode(),
		TraceDepth:        8,
	})
	p, err := m.LoadAsm(victim, "paymentd")
	if err != nil {
		log.Fatal(err)
	}
	// The attack: NOP sled + execve shellcode (position independent).
	payload := []byte{0x90, 0x90, 0x90, 0x90,
		0xE8, 0, 0, 0, 0, 0x5B, 0x05, 0x03, 14, 0, 0, 0,
		0xB8, 11, 0, 0, 0, 0xCD, 0x80}
	payload = append(payload, []byte("/bin/sh\x00")...)
	p.StdinWrite(payload)
	m.Run(0)

	fmt.Println("==== incident report ====")
	exited, status := p.Exited()
	fmt.Printf("process %q: exited=%v status=%d (forensic shellcode ran in place of the payload)\n\n",
		p.Name, exited, status)

	fmt.Println("-- events (JSONL, ready for a collector) --")
	jsonl, err := m.EventsJSONL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(jsonl))

	for _, ev := range m.EventsOf(splitmem.EvForensicDump) {
		fmt.Printf("\n-- captured payload at EIP=%#08x (read from the data twin) --\n", ev.Addr)
		fmt.Printf("% x\n", ev.Data)
	}

	fmt.Println("\n-- instruction trail into the hijack --")
	fmt.Print(m.TraceTail())
}
