package splitmem_test

// The chaos matrix: every fault class the chaos engine can inject, one at a
// time at its default rate, against a real exploit scenario under both split
// deployments and the three main response modes, with the paranoid auditor
// watching. The claims under test:
//
//   - the host never panics and every run stops for an orderly reason;
//   - the paranoid auditor finds zero unexplained invariant violations —
//     injected TLB incoherence is healed and attributed, engine state stays
//     consistent through evictions, flushes, double faults, bit flips and
//     context-switch storms;
//   - the exploit still never succeeds under split protection (observe mode
//     excepted: it deliberately lets attacks through, though chaos may stop
//     them earlier);
//   - the host fast paths — superblock engine and predecode cache — stay
//     architecturally invisible even while chaos rewrites frames, flushes
//     TLBs and double-delivers faults: every cell runs on all three engine
//     arms and they must produce identical event logs and statistics.

import (
	"fmt"
	"testing"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/workloads"
)

// faultClasses enables one chaos fault class at a time, at default rate.
func faultClasses() map[string]splitmem.ChaosConfig {
	def := splitmem.ChaosDefaults()
	return map[string]splitmem.ChaosConfig{
		"itlb-evict":     {ITLBEvict: def.ITLBEvict},
		"dtlb-evict":     {DTLBEvict: def.DTLBEvict},
		"tlb-flush":      {TLBFlush: def.TLBFlush},
		"stale-tlb":      {StaleTLB: def.StaleTLB},
		"spurious-debug": {SpuriousDebug: def.SpuriousDebug},
		"double-fault":   {DoubleFault: def.DoubleFault},
		"bit-flip":       {BitFlip: def.BitFlip},
		"preempt":        {Preempt: def.Preempt},
	}
}

func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is broad")
	}
	prots := []splitmem.Protection{splitmem.ProtSplit, splitmem.ProtSplitNX}
	responses := []splitmem.ResponseMode{splitmem.Break, splitmem.Observe, splitmem.Forensics}
	for class, chaosCfg := range faultClasses() {
		for _, prot := range prots {
			for _, resp := range responses {
				name := fmt.Sprintf("%s/%v/%v", class, prot, resp)
				t.Run(name, func(t *testing.T) {
					cfg := splitmem.Config{
						Protection: prot,
						Response:   resp,
						Paranoid:   true,
						Chaos:      chaosCfg,
					}
					cfg.Chaos.Seed = 0xC4A05 // deterministic across the matrix
					if resp == splitmem.Forensics {
						cfg.ForensicShellcode = splitmem.ExitShellcode()
					}
					r, err := attacks.RunScenario("miniwuftp", cfg)
					if err != nil {
						t.Fatal(err)
					}
					if r.InvariantViolations != 0 {
						t.Fatalf("%d invariant violations under %s chaos:\n%s",
							r.InvariantViolations, class, r.EventsJSONL)
					}
					if resp != splitmem.Observe && r.Succeeded() {
						t.Fatalf("exploit succeeded under %v despite split protection: %+v", resp, r)
					}
					// Differential arms: the same cell on the predecode-only
					// and pure-interpreter engines must be indistinguishable
					// (the default run above is the superblock arm).
					prev, prevName := r, "superblock"
					for _, arm := range engineArms[1:] {
						armCfg := cfg
						arm.mut(&armCfg)
						next, err := attacks.RunScenario("miniwuftp", armCfg)
						if err != nil {
							t.Fatal(err)
						}
						compareAttack(t, name+"/"+prevName+"-vs-"+arm.name, prev, next)
						prev, prevName = next, arm.name
					}
				})
			}
		}
	}
}

// TestChaosSnapshotMatrix: checkpoint/restore in the middle of a chaotic
// run, one fault class at a time. The injector's PRNG stream, its stale-vpn
// table and every already-injected fault (evicted entries, retained stale
// translations, flipped bits) ride in the image, so the resumed run must
// draw the identical fault sequence and end indistinguishable from the
// uninterrupted one.
func TestChaosSnapshotMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is broad")
	}
	prog, ok := workloads.Lookup("gzip")
	if !ok {
		t.Fatal("gzip workload missing from catalog")
	}
	for class, chaosCfg := range faultClasses() {
		class, chaosCfg := class, chaosCfg
		t.Run(class, func(t *testing.T) {
			cfg := splitmem.Config{
				Protection: splitmem.ProtSplit,
				Paranoid:   true,
				Chaos:      chaosCfg,
			}
			cfg.Chaos.Seed = 0xC4A05
			base := runWorkload(t, prog, cfg)
			snapAt := pseudoCycle(class, base.cycles)
			resumed := runWorkloadResumed(t, prog, cfg, snapAt)
			compareDigests(t, class, base, resumed)
		})
	}
}

// TestChaosForkMatrix: fork in the middle of a chaotic run, one fault class
// at a time. The forked machine inherits the injector's PRNG stream and every
// already-injected fault through the shared copy-on-write frames (flipped
// bits included), so parent and child must draw identical fault sequences
// independently and both must end indistinguishable from the uninterrupted
// cold-booted run.
func TestChaosForkMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is broad")
	}
	prog, ok := workloads.Lookup("gzip")
	if !ok {
		t.Fatal("gzip workload missing from catalog")
	}
	for class, chaosCfg := range faultClasses() {
		class, chaosCfg := class, chaosCfg
		t.Run(class, func(t *testing.T) {
			cfg := splitmem.Config{
				Protection: splitmem.ProtSplit,
				Paranoid:   true,
				Chaos:      chaosCfg,
			}
			cfg.Chaos.Seed = 0xC4A05
			base := runWorkload(t, prog, cfg)
			forkAt := pseudoCycle("fork"+class, base.cycles)
			forked := runWorkloadForked(t, prog, cfg, forkAt)
			compareDigests(t, class, base, forked)
		})
	}
}

// TestChaosStatsAccounting runs a long scenario with every class enabled and
// checks the injector actually fired and that its activity is visible in the
// aggregated Stats.
func TestChaosStatsAccounting(t *testing.T) {
	r, err := attacks.RunScenario("miniwuftp", splitmem.Config{
		Protection: splitmem.ProtSplit,
		Response:   splitmem.Break,
		Paranoid:   true,
		Chaos:      splitmem.ChaosDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Stats.Chaos
	total := c.ITLBEvictions + c.DTLBEvictions + c.TLBFlushes + c.StaleRetained +
		c.SpuriousDebugs + c.DoubleFaults + c.Preempts
	if total == 0 {
		t.Fatalf("chaos injector never fired: %+v", c)
	}
	if r.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations with all chaos classes on", r.InvariantViolations)
	}
	if r.Succeeded() {
		t.Fatalf("exploit succeeded under split protection: %+v", r)
	}
}
