package splitmem

// The v2 client API: context-aware execution, typed configuration and
// input errors, and incremental event consumption. These exist because the
// splitmem-serve analysis service needs them — a network service must map
// failures to client-vs-server faults with errors.Is/As, cancel jobs on
// deadline or disconnect, and stream events without re-copying the log —
// but they are plain library surface, usable without the service.

import (
	"context"
	"errors"
	"fmt"

	"splitmem/internal/asm"
	"splitmem/internal/kernel"
	"splitmem/internal/loader"
	"splitmem/internal/mem"
)

// ErrBadConfig is the sentinel wrapped by every Config.Validate rejection.
// errors.Is(err, ErrBadConfig) on a New failure distinguishes "the caller
// asked for an impossible machine" from an internal construction failure.
var ErrBadConfig = errors.New("splitmem: bad config")

// ErrBadImage is loader.ErrBadImage re-exported: the sentinel wrapped by
// every LoadBinary rejection of a malformed or hostile SELF image.
var ErrBadImage = loader.ErrBadImage

// AsmError is asm.Error re-exported: the typed source-level failure
// (line number + message) returned by Assemble and LoadAsm. Pull it out
// with errors.As to report the offending line to the program's author.
type AsmError = asm.Error

// ReasonCanceled is returned by RunContext when its context is canceled or
// its deadline expires; see kernel.ReasonCanceled.
const ReasonCanceled = kernel.ReasonCanceled

// rate01 checks one chaos per-event probability.
func rate01(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%w: chaos rate %s = %v outside [0, 1]", ErrBadConfig, name, v)
	}
	return nil
}

// Validate checks the configuration for values no machine can honor. New
// calls it first, so a Config that survives Validate either boots or fails
// for an internal reason; services can therefore map ErrBadConfig to a
// client error and everything else from New to a server error.
func (cfg Config) Validate() error {
	if cfg.Protection < ProtNone || cfg.Protection > ProtSplitNX {
		return fmt.Errorf("%w: unknown protection %d", ErrBadConfig, int(cfg.Protection))
	}
	if cfg.Response < Break || cfg.Response > Recovery {
		return fmt.Errorf("%w: unknown response mode %d", ErrBadConfig, int(cfg.Response))
	}
	if cfg.SplitFraction < 0 || cfg.SplitFraction > 1 {
		return fmt.Errorf("%w: SplitFraction %v outside [0, 1]", ErrBadConfig, cfg.SplitFraction)
	}
	if n := len(cfg.ForensicShellcode); n > int(mem.PageSize) {
		return fmt.Errorf("%w: ForensicShellcode is %d bytes; it must fit one %d-byte code twin",
			ErrBadConfig, n, mem.PageSize)
	}
	if cfg.ITLBSize < 0 {
		return fmt.Errorf("%w: negative ITLBSize %d", ErrBadConfig, cfg.ITLBSize)
	}
	if cfg.DTLBSize < 0 {
		return fmt.Errorf("%w: negative DTLBSize %d", ErrBadConfig, cfg.DTLBSize)
	}
	if cfg.PhysBytes < 0 {
		return fmt.Errorf("%w: negative PhysBytes %d", ErrBadConfig, cfg.PhysBytes)
	}
	if cfg.PhysBytes > 0 && cfg.PhysBytes < int(mem.PageSize) {
		return fmt.Errorf("%w: PhysBytes %d smaller than one %d-byte page",
			ErrBadConfig, cfg.PhysBytes, mem.PageSize)
	}
	if cfg.TraceDepth < 0 {
		return fmt.Errorf("%w: negative TraceDepth %d", ErrBadConfig, cfg.TraceDepth)
	}
	if cfg.TelemetrySpanCap < 0 {
		return fmt.Errorf("%w: negative TelemetrySpanCap %d", ErrBadConfig, cfg.TelemetrySpanCap)
	}
	c := cfg.Chaos
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ITLBEvict", c.ITLBEvict}, {"DTLBEvict", c.DTLBEvict},
		{"TLBFlush", c.TLBFlush}, {"StaleTLB", c.StaleTLB},
		{"SpuriousDebug", c.SpuriousDebug}, {"DoubleFault", c.DoubleFault},
		{"BitFlip", c.BitFlip}, {"Preempt", c.Preempt},
	} {
		if err := rate01(r.name, r.v); err != nil {
			return err
		}
	}
	return nil
}

// RunContext is Run with cancellation and deadlines: when ctx is canceled
// or its deadline passes, the scheduler returns ReasonCanceled at the next
// timeslice boundary — within one timeslice of simulated work — with guest
// state consistent, so the machine may be resumed by a later Run call. See
// kernel.Kernel.RunContext for the polling contract.
func (m *Machine) RunContext(ctx context.Context, maxCycles uint64) RunResult {
	res := m.kern.RunContext(ctx, maxCycles)
	if res.Reason == ReasonInternalError {
		res.Trace = m.TraceTail()
	}
	return res
}

// EventSeq returns the machine's lifetime event count — the cursor an
// incremental reader passes to EventsSince.
func (m *Machine) EventSeq() int { return m.kern.EventSeq() }

// EventsSince returns the retained kernel events with lifetime sequence
// number >= n without copying the log; pollers and NDJSON streamers call
// it with the cursor from their previous EventSeq instead of re-reading
// Events() whole. The slice aliases the log and is valid until the next
// event is emitted.
func (m *Machine) EventsSince(n int) []Event { return m.kern.EventsSince(n) }
