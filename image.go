package splitmem

// The typed Image API: a machine parked at a timeslice boundary freezes into
// an Image — architectural metadata plus an immutable, refcounted set of
// physical frames (mem.Base) — and any number of machines boot from it,
// sharing every frame copy-on-write until their first write. This is the
// Firecracker/snap-start shape: boot a template once, fork per job, pay only
// for the frames each fork actually dirties.
//
// The determinism contract is absolute: a machine booted from an Image (or
// returned by Machine.Fork) is bit-identical to one restored from a Snapshot
// taken at the same instant — same retired-instruction stream, same events,
// same architectural stats. Only the host-side acceleration caches (predecode,
// superblocks) start cold, exactly as they do after Restore; the oracle suite
// (TestOracleFork*) holds this across workloads, the Wilander attack grid,
// and every chaos fault class.

import (
	"fmt"
	"io"
	"sync/atomic"

	"splitmem/internal/mem"
	"splitmem/internal/snapshot"
)

// imgMagic brands a serialized Image; imgVersion is bumped on any format
// change. The Image format shares the section codec with Snapshot but stores
// frame contents once, outside the metadata, so a written image is also the
// natural interchange format for warm-pool templates.
const (
	imgMagic   = "S86IMG\x00\x01"
	imgVersion = 1
)

// Image is an immutable machine image: everything a Snapshot captures, with
// the physical frame contents held in a shareable mem.Base instead of inline
// bytes. An Image is safe for concurrent use — any number of goroutines may
// Boot from it at once — and stays valid however many machines attach to or
// detach from it.
//
// Obtain one with Machine.Image (freezing a live machine) or ReadImage
// (deserializing a written one).
type Image struct {
	meta []byte    // canonical section sequence, frames elided
	base *mem.Base // immutable shared frame contents

	// pmeta caches the decoded physical-allocator section of meta so repeated
	// boots install it by copy instead of re-parsing bytes (the warm-pool hot
	// path). Machine.Image fills it at freeze time; an Image read from bytes
	// self-warms after its first successful Boot, which is also the boot that
	// fully validates the byte section. Atomic because Boot is documented
	// safe for concurrent use.
	pmeta atomic.Pointer[mem.Meta]
}

// Image freezes the machine's current architectural state into an Image.
// Call it only between Run/RunContext invocations, like Snapshot.
//
// The machine itself keeps running afterwards: its frames become shared with
// the Image and are copied back out on first write (copy-on-write), so
// taking an Image is cheap — no frame bytes move — and repeated calls on an
// undisturbed machine reuse the same frame store.
func (m *Machine) Image() (*Image, error) {
	w := snapshot.NewWriter()
	m.encodeBody(w, false)
	img := &Image{meta: w.Bytes(), base: m.mach.Phys.Seal()}
	img.pmeta.Store(m.mach.Phys.SnapMeta())
	return img, nil
}

// Boot builds a fresh machine from the Image. The machine shares the Image's
// physical frames copy-on-write and is bit-identical to one restored from a
// Snapshot of the original at the same instant. Failures wrap ErrBadImage.
func (img *Image) Boot() (*Machine, error) { return img.BootWithHook(nil) }

// BootWithHook is Boot with an event hook attached to the new machine
// (hooks are functions and cannot live in an image).
func (img *Image) BootWithHook(hook func(Event)) (*Machine, error) {
	if img == nil || img.base == nil {
		return nil, fmt.Errorf("%w: nil image", ErrBadImage)
	}
	pmeta := img.pmeta.Load()
	m, err := decodeBody(snapshot.NewReader(img.meta), hook, img.base, pmeta)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadImage, err)
	}
	if pmeta == nil {
		// First boot of a deserialized image just decoded (and validated) the
		// allocator section the slow way; cache it so the next boot doesn't.
		img.pmeta.CompareAndSwap(nil, m.mach.Phys.SnapMeta())
	}
	return m, nil
}

// Fork returns a new machine bit-identical to m at this instant — the same
// architectural state a cold boot replayed to the same cycle would hold —
// sharing all physical frames with m copy-on-write. Both machines remain
// fully independent afterwards: neither can observe the other's writes.
// Call it only between Run/RunContext invocations, like Snapshot.
//
// The fork carries no event hook (use ForkWithHook) and, like a restored
// machine, starts with cold host-side decode/superblock caches.
func (m *Machine) Fork() (*Machine, error) { return m.ForkWithHook(nil) }

// ForkWithHook is Fork with an event hook attached to the child.
func (m *Machine) ForkWithHook(hook func(Event)) (*Machine, error) {
	img, err := m.Image()
	if err != nil {
		return nil, err
	}
	return img.BootWithHook(hook)
}

// Close releases the machine's reference to any shared frame store it is
// attached to (from Image.Boot, Fork, or a previous Image call). The machine
// must not be used afterwards. Close is idempotent and a no-op for machines
// that never shared frames; it exists so warm pools can prove refcounts drain
// to zero when a generation of forks retires.
func (m *Machine) Close() {
	m.mach.Phys.Close()
}

// SharedBase returns the shared frame store the machine is attached to, or
// nil. Exposed for pool accounting and tests (mem.Base.Refs).
func (m *Machine) SharedBase() *mem.Base { return m.mach.Phys.Base() }

// WriteTo serializes the Image: magic, version, the metadata section, the
// nonzero frames of the shared base, and a CRC-32 trailer over everything
// before it. Image implements io.WriterTo.
func (img *Image) WriteTo(dst io.Writer) (int64, error) {
	w := snapshot.NewWriter()
	w.Raw([]byte(imgMagic))
	w.U32(imgVersion)
	w.Bytes32(img.meta)
	n := img.base.NumFrames()
	w.U32(n)
	var nonzero uint32
	for f := uint32(0); f < n; f++ {
		if img.base.View(f) != nil {
			nonzero++
		}
	}
	w.U32(nonzero)
	for f := uint32(0); f < n; f++ {
		if b := img.base.View(f); b != nil {
			w.U32(f)
			w.Raw(b)
		}
	}
	w.U32(snapshot.Checksum(w.Bytes()))
	written, err := dst.Write(w.Bytes())
	return int64(written), err
}

// ReadFrom deserializes an Image written by WriteTo, replacing the
// receiver's contents. Image implements io.ReaderFrom. Failures wrap
// ErrBadImage.
func (img *Image) ReadFrom(src io.Reader) (int64, error) {
	raw, err := io.ReadAll(src)
	if err != nil {
		return int64(len(raw)), err
	}
	dec, err := decodeImage(raw)
	if err != nil {
		return int64(len(raw)), err
	}
	img.meta = dec.meta
	img.base = dec.base
	img.pmeta.Store(dec.pmeta.Load())
	return int64(len(raw)), nil
}

// ReadImage deserializes an Image written by WriteTo. Failures wrap
// ErrBadImage (and the snapshot sentinels ErrSnapshotTruncated /
// ErrSnapshotCorrupt / ErrSnapshotVersion for classification).
func ReadImage(src io.Reader) (*Image, error) {
	raw, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	return decodeImage(raw)
}

func decodeImage(raw []byte) (*Image, error) {
	badf := func(err error) error { return fmt.Errorf("%w: %w", ErrBadImage, err) }
	if len(raw) < len(imgMagic)+12 {
		return nil, badf(snapshot.ErrTruncated)
	}
	if string(raw[:len(imgMagic)]) != imgMagic {
		return nil, badf(snapshot.Corruptf("bad image magic"))
	}
	body := raw[:len(raw)-4]
	want := snapshot.NewReader(raw[len(raw)-4:]).U32()
	if got := snapshot.Checksum(body); got != want {
		return nil, badf(snapshot.Corruptf("checksum mismatch: image says %#x, content hashes to %#x", want, got))
	}
	r := snapshot.NewReader(body[len(imgMagic):])
	if v := r.U32(); v != imgVersion {
		return nil, badf(fmt.Errorf("%w: image version %d, this build reads %d", snapshot.ErrVersion, v, imgVersion))
	}
	meta := r.Bytes32()
	nframes := r.U32()
	if err := r.Err(); err != nil {
		return nil, badf(err)
	}
	if nframes == 0 || nframes > (1<<30)/mem.PageSize {
		return nil, badf(snapshot.Corruptf("image claims %d frames", nframes))
	}
	frames := make([][]byte, nframes)
	nonzero := r.U32()
	if nonzero > nframes {
		return nil, badf(snapshot.Corruptf("%d nonzero frames of %d", nonzero, nframes))
	}
	for i := uint32(0); i < nonzero; i++ {
		f := r.U32()
		if f >= nframes {
			return nil, badf(snapshot.Corruptf("frame %d out of range", f))
		}
		pg := r.Raw(mem.PageSize)
		if len(pg) == mem.PageSize {
			cp := make([]byte, mem.PageSize)
			copy(cp, pg)
			frames[f] = cp
		}
	}
	if err := r.Err(); err != nil {
		return nil, badf(err)
	}
	if r.Remaining() != 0 {
		return nil, badf(snapshot.Corruptf("%d trailing bytes after frame section", r.Remaining()))
	}
	// The meta section is validated lazily by Boot (it runs the same decoder
	// Restore does, behind the same sanity caps); a copy keeps the Image
	// detached from the caller's buffer.
	metaCp := make([]byte, len(meta))
	copy(metaCp, meta)
	return &Image{meta: metaCp, base: mem.NewBase(frames)}, nil
}
