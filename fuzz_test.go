package splitmem_test

// Native Go fuzzing over the binary loader and the machine front end: an
// arbitrary byte string is treated as a SELF image, loaded, and (when the
// loader accepts it) executed for a small cycle budget under the paranoid
// split engine. Whatever the bytes decode to, the host must not panic, the
// run must stop for an orderly reason, and no Harvard invariant may break.

import (
	"bytes"
	"testing"

	"splitmem"
)

func FuzzLoadBinary(f *testing.F) {
	// Seed with a well-formed image, truncations of it, and byte soup.
	if prog, err := splitmem.Assemble(`
_start:
    mov eax, 1
    mov ebx, 7
    int 0x80
.data
greeting: .ascii "hi"
`); err == nil {
		if img, err := prog.Marshal(); err == nil {
			f.Add(img)
			f.Add(img[:len(img)/2])
			f.Add(img[:8])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("SELF"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, img []byte) {
		m, err := splitmem.New(splitmem.Config{
			Protection: splitmem.ProtSplit,
			Paranoid:   true,
			PhysBytes:  4 << 20, // keep hostile section tables cheap to reject
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadBinary(img, "fuzz")
		if err != nil {
			return // rejected images are the loader doing its job
		}
		p.StdinClose()
		res := m.Run(500_000)
		validStop(t, res)
		wellFormedLog(t, m)
		if n := len(m.EventsOf(splitmem.EvInvariantViolation)); n != 0 {
			t.Fatalf("%d invariant violations", n)
		}
	})
}
