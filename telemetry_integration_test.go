package splitmem_test

// End-to-end acceptance tests for the telemetry subsystem: a quickstart-
// style run must produce Perfetto-loadable trace JSON with distinct
// itlb-load and dtlb-load spans for a protected page, latency histograms
// with real samples, and an unchanged hot path when telemetry is off.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"splitmem"
)

// touchVictim fetches, stores, and loads on split pages, then reads
// attacker bytes into a stack buffer and jumps into it — exercising both
// TLB-load flavors before the injection is detected.
const touchVictim = `
_start:
    sub esp, 1024
    mov ecx, esp        ; buffer
    store [esp], ecx    ; data store -> dtlb load on the stack page
    load edx, [esp]     ; data load on the same page
    mov ebx, 0          ; stdin
    mov edx, 1024
    mov eax, 3          ; read(0, buffer, 1024)
    int 0x80
    jmp ecx             ; hijacked control transfer
`

// runInstrumentedAttack drives the §3.2 injection against an instrumented
// observe-mode machine and returns it after the detection.
func runInstrumentedAttack(t *testing.T) *splitmem.Machine {
	t.Helper()
	probe := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtNone})
	pp, err := probe.LoadAsm(touchVictim, "probe")
	if err != nil {
		t.Fatal(err)
	}
	probe.Run(0)
	bufAddr := pp.Ctx.R[1] // ECX at the blocking read

	shellcode := []byte{0xBB, 0, 0, 0, 0, 0xB8, 11, 0, 0, 0, 0xCD, 0x80}
	binary.LittleEndian.PutUint32(shellcode[1:], bufAddr+uint32(len(shellcode)))
	shellcode = append(shellcode, []byte("/bin/sh\x00")...)

	m := splitmem.MustNew(splitmem.Config{
		Protection: splitmem.ProtSplit,
		Response:   splitmem.Observe,
		Telemetry:  true,
		TraceDepth: 32,
	})
	p, err := m.LoadAsm(touchVictim, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite(shellcode)
	m.Run(0)
	if len(m.EventsOf(splitmem.EvInjectionDetected)) == 0 {
		t.Fatal("attack run produced no detection")
	}
	return m
}

// TestTelemetrySpansAndHistograms is the headline acceptance check:
// distinct itlb-load and dtlb-load spans for at least one protected page,
// and nonzero fault-handling latency samples.
func TestTelemetrySpansAndHistograms(t *testing.T) {
	m := runInstrumentedAttack(t)
	hub := m.Telemetry()
	if hub == nil {
		t.Fatal("Telemetry() is nil with Config.Telemetry set")
	}

	itlbPages := map[uint32]bool{}
	dtlbPages := map[uint32]bool{}
	for _, sp := range hub.Spans().Spans() {
		switch sp.Name {
		case "itlb-load":
			itlbPages[sp.VPN] = true
		case "dtlb-load":
			dtlbPages[sp.VPN] = true
		}
	}
	if len(itlbPages) == 0 || len(dtlbPages) == 0 {
		t.Fatalf("want both span flavors, got itlb pages %v, dtlb pages %v", itlbPages, dtlbPages)
	}

	reg := hub.Registry()
	for _, name := range []string{
		"splitmem_cpu_pf_handler_cycles",
		"splitmem_split_itlb_load_cycles",
		"splitmem_split_dtlb_load_cycles",
		"splitmem_split_tf_roundtrip_cycles",
	} {
		h := reg.LookupHistogram(name)
		if h == nil {
			t.Errorf("histogram %s not registered", name)
			continue
		}
		if h.Count() == 0 || h.Sum() == 0 {
			t.Errorf("%s has no samples (count=%d sum=%d)", name, h.Count(), h.Sum())
		}
	}
	if c := reg.LookupCounter("splitmem_split_pte_flips_total"); c == nil || c.Value() == 0 {
		t.Error("pte flip counter empty")
	}
	if v := reg.LookupCounterVec("splitmem_split_page_loads_total"); v == nil || len(v.Items()) == 0 {
		t.Error("page heatmap empty")
	}
}

// TestTelemetryTraceEventExport renders the trace_event JSON and verifies
// the structure Perfetto requires: a traceEvents array whose complete
// ("X") events include both TLB-load flavors with pid/tid/ts/dur.
func TestTelemetryTraceEventExport(t *testing.T) {
	m := runInstrumentedAttack(t)
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			PID  int    `json:"pid"`
			TID  uint64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	flavors := map[string]int{}
	var sawDur, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			sawMeta = true
		case "X":
			flavors[ev.Name]++
			if ev.Dur > 0 {
				sawDur = true
			}
			if ev.PID == 0 {
				t.Errorf("span %q has no pid", ev.Name)
			}
		}
	}
	if flavors["itlb-load"] == 0 || flavors["dtlb-load"] == 0 {
		t.Fatalf("trace lacks a TLB-load flavor: %v", flavors)
	}
	if !sawDur {
		t.Error("no complete span carries a duration")
	}
	if !sawMeta {
		t.Error("no process/thread name metadata emitted")
	}

	var prom bytes.Buffer
	if err := m.WriteMetricsPrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE splitmem_split_itlb_load_cycles histogram",
		"splitmem_split_detections_total 1",
		`splitmem_split_proc_loads_total{pid="1"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestTelemetryDetectionTrace asserts the forensic satellite: with a trace
// ring configured, the detection event carries the retired-instruction
// listing ending in the hijacking jump.
func TestTelemetryDetectionTrace(t *testing.T) {
	m := runInstrumentedAttack(t)
	evs := m.EventsOf(splitmem.EvInjectionDetected)
	if len(evs) == 0 {
		t.Fatal("no detection")
	}
	tr := evs[0].Trace
	if tr == "" {
		t.Fatal("detection event has no attached instruction trace")
	}
	if !strings.Contains(tr, "jmp ecx") {
		t.Errorf("trace should end with the hijacking jump:\n%s", tr)
	}
	// The listing must survive the JSONL round trip.
	raw, err := m.EventsJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"trace":"`)) {
		t.Error("JSONL export lacks the trace field")
	}
}

// TestTelemetryDisabled pins the compiled-in-but-off contract: no hub, all
// exporters refuse politely, and the engine never touches instruments.
func TestTelemetryDisabled(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtSplit})
	p, err := m.LoadAsm(touchVictim, "victim")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinClose()
	m.Run(0)
	if m.Telemetry() != nil {
		t.Fatal("hub exists without Config.Telemetry")
	}
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err == nil {
		t.Error("WriteTrace should fail when telemetry is off")
	}
	if err := m.WriteMetricsPrometheus(&buf); err == nil {
		t.Error("WriteMetricsPrometheus should fail when telemetry is off")
	}
	// The nil hub is safe to use anyway.
	if m.Telemetry().Spans().Len() != 0 || m.Telemetry().Registry().Len() != 0 {
		t.Error("nil hub accessors should report empty")
	}
}

// TestTelemetryOverheadGuard measures instruction throughput with telemetry
// off vs on and fails on >5% off-path regression potential — the CI guard
// for "compiled in but disabled costs nothing". Wall-clock based, so it
// only runs when SPLITMEM_TELEMETRY_GUARD=1 (CI sets it; local `go test`
// stays deterministic).
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("SPLITMEM_TELEMETRY_GUARD") != "1" {
		t.Skip("set SPLITMEM_TELEMETRY_GUARD=1 to run the wall-clock guard")
	}
	spin := `
_start:
    mov ecx, 200000
loop:
    add eax, 3
    mul eax, 5
    dec ecx
    cmp ecx, 0
    jnz loop
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	run := func(telemetry bool) float64 {
		best := 0.0
		for round := 0; round < 5; round++ {
			m := splitmem.MustNew(splitmem.Config{
				Protection: splitmem.ProtSplit,
				Telemetry:  telemetry,
			})
			p, err := m.LoadAsm(spin, "spin")
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			m.Run(0)
			elapsed := time.Since(start).Seconds()
			if exited, _ := p.Exited(); !exited {
				t.Fatal("spin did not finish")
			}
			ips := float64(m.Stats().Instructions) / elapsed
			if ips > best {
				best = ips
			}
		}
		return best
	}
	off := run(false)
	on := run(true)
	t.Logf("instructions/sec: telemetry off %.0f, on %.0f (%.2f%% delta)",
		off, on, 100*(off-on)/off)
	// The guarded claim is that DISABLED telemetry leaves the hot path
	// unaffected: compare best-of-5 off-run against best-of-5 on-run and
	// allow 5%. (Enabled telemetry only pays on trap paths, so even the on
	// run should stay within the band for this fault-light workload.)
	if off < on*0.95 {
		t.Errorf("telemetry-off throughput %.0f is >5%% below telemetry-on %.0f — disabled path regressed", off, on)
	}
	if on < off*0.95 {
		t.Errorf("telemetry-on throughput %.0f is >5%% below telemetry-off %.0f", on, off)
	}
}
