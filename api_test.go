package splitmem_test

// Tests for the v2 client API: RunContext cancellation, Config.Validate's
// typed rejections, typed assembler/loader errors, and the incremental
// event log (EventSeq / EventsSince).

import (
	"context"
	"errors"
	"testing"
	"time"

	"splitmem"
)

const spinSrc = `
_start:
spin:
    jmp spin
`

func TestRunContextPreCanceled(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{})
	if _, err := m.LoadAsm(spinSrc, "spin"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := m.RunContext(ctx, 0)
	if res.Reason != splitmem.ReasonCanceled {
		t.Fatalf("reason=%v want canceled", res.Reason)
	}
	if res.Cycles != 0 {
		t.Fatalf("pre-canceled run consumed %d cycles", res.Cycles)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{})
	if _, err := m.LoadAsm(spinSrc, "spin"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	// The guest spins forever; only the cancellation can end this run.
	res := m.RunContext(ctx, 0)
	if res.Reason != splitmem.ReasonCanceled {
		t.Fatalf("reason=%v want canceled", res.Reason)
	}
	if res.Cycles == 0 {
		t.Fatal("mid-run cancel should have simulated some cycles")
	}

	// Guest state stays consistent: the machine resumes under a fresh
	// context and stops at its budget, not in some wedged state.
	res = m.Run(100_000)
	if res.Reason != splitmem.ReasonBudget {
		t.Fatalf("resumed reason=%v want budget", res.Reason)
	}
}

func TestRunContextDeadline(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{})
	if _, err := m.LoadAsm(spinSrc, "spin"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := m.RunContext(ctx, 0)
	if res.Reason != splitmem.ReasonCanceled {
		t.Fatalf("reason=%v want canceled", res.Reason)
	}
}

func TestRunIsRunContextBackground(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{})
	if _, err := m.LoadAsm(spinSrc, "spin"); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(50_000); res.Reason != splitmem.ReasonBudget {
		t.Fatalf("reason=%v want budget", res.Reason)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := map[string]splitmem.Config{
		"protection":    {Protection: splitmem.Protection(99)},
		"response":      {Response: splitmem.ResponseMode(99)},
		"fraction-low":  {SplitFraction: -0.5},
		"fraction-high": {SplitFraction: 1.5},
		"itlb":          {ITLBSize: -1},
		"dtlb":          {DTLBSize: -4},
		"phys-negative": {PhysBytes: -1},
		"phys-subpage":  {PhysBytes: 100},
		"trace-depth":   {TraceDepth: -2},
		"span-cap":      {TelemetrySpanCap: -1},
		"shellcode":     {ForensicShellcode: make([]byte, 8192)},
		"chaos-rate":    {Chaos: splitmem.ChaosConfig{BitFlip: 1.5}},
	}
	for name, cfg := range bad {
		t.Run(name, func(t *testing.T) {
			if err := cfg.Validate(); !errors.Is(err, splitmem.ErrBadConfig) {
				t.Fatalf("Validate() = %v, want ErrBadConfig", err)
			}
			// New must surface the same typed rejection.
			if _, err := splitmem.New(cfg); !errors.Is(err, splitmem.ErrBadConfig) {
				t.Fatalf("New() = %v, want ErrBadConfig", err)
			}
		})
	}

	good := []splitmem.Config{
		{},
		{Protection: splitmem.ProtSplitNX, Response: splitmem.Recovery, SplitFraction: 1},
		{ForensicShellcode: splitmem.ExitShellcode()},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
}

func TestAsmErrorHasLine(t *testing.T) {
	_, err := splitmem.Assemble("_start:\n    mov eax, 0\n    frobnicate eax\n")
	if err == nil {
		t.Fatal("bad mnemonic assembled")
	}
	var ae *splitmem.AsmError
	if !errors.As(err, &ae) {
		t.Fatalf("err %T %v is not an AsmError", err, err)
	}
	if ae.Line != 3 {
		t.Fatalf("line=%d want 3 (%v)", ae.Line, ae)
	}
}

func TestErrBadImage(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{})
	for name, img := range map[string][]byte{
		"empty":     nil,
		"bad-magic": []byte("ELF!this is not a SELF image"),
		"truncated": {0x7F, 'S', '8', '6'},
	} {
		if _, err := m.LoadBinary(img, name); !errors.Is(err, splitmem.ErrBadImage) {
			t.Fatalf("%s: err=%v want ErrBadImage", name, err)
		}
	}
}

func TestEventsSince(t *testing.T) {
	m := splitmem.MustNew(splitmem.Config{})
	if m.EventSeq() != 0 {
		t.Fatalf("fresh machine EventSeq=%d", m.EventSeq())
	}
	if _, err := m.LoadAsm(`
_start:
    mov ebx, 0
    mov eax, 1
    int 0x80
`, "exit"); err != nil {
		t.Fatal(err)
	}
	m.Run(0)

	all := m.Events()
	seq := m.EventSeq()
	if len(all) == 0 || seq != len(all) {
		t.Fatalf("events=%d seq=%d", len(all), seq)
	}
	since := m.EventsSince(0)
	if len(since) != len(all) {
		t.Fatalf("EventsSince(0)=%d events, Events()=%d", len(since), len(all))
	}
	if got := m.EventsSince(seq - 1); len(got) != 1 || got[0].Kind != all[len(all)-1].Kind {
		t.Fatalf("EventsSince(seq-1) = %v", got)
	}
	if got := m.EventsSince(seq); len(got) != 0 {
		t.Fatalf("EventsSince(seq) = %v, want empty", got)
	}
	// Cursors stay monotonic across a negative or over-large argument.
	if got := m.EventsSince(-5); len(got) != len(all) {
		t.Fatalf("EventsSince(-5)=%d want %d", len(got), len(all))
	}
	if got := m.EventsSince(seq + 100); len(got) != 0 {
		t.Fatalf("EventsSince(seq+100)=%d want 0", len(got))
	}
}
