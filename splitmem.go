// Package splitmem is a full-system reproduction of "An Architectural
// Approach to Preventing Code Injection Attacks" (Riley, Jiang, Xu; DSN
// 2007 / IEEE TDSC 2010): a virtual Harvard ("split memory") architecture
// built by desynchronizing the split instruction/data TLBs of an x86-class
// processor, so injected code lands in data memory that the processor can
// never fetch.
//
// Because the technique is operating-system pagetable/TLB manipulation on
// real silicon, this library ships its own substrate: the S86 machine
// simulator (CPU, MMU with hardware-walked pagetables, split TLBs, faults,
// single-step), a mini Unix-like kernel, an assembler and binary format for
// guest programs, the split-memory protection engine with the paper's
// break/observe/forensics response modes, the execute-disable-bit baseline,
// the paper's attack suite, and the benchmark harness that regenerates
// every table and figure of the evaluation.
//
// Quick start:
//
//	m, _ := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit})
//	p, _ := m.LoadAsm(source, "victim")
//	res := m.Run(0)
//
// See examples/ for complete programs.
package splitmem

import (
	"context"
	"fmt"
	"io"

	"splitmem/internal/asm"
	"splitmem/internal/chaos"
	"splitmem/internal/core"
	"splitmem/internal/cpu"
	"splitmem/internal/isa"
	"splitmem/internal/kernel"
	"splitmem/internal/loader"
	"splitmem/internal/mem"
	"splitmem/internal/nx"
	"splitmem/internal/telemetry"
	"splitmem/internal/tlb"
	"splitmem/internal/trace"
)

// Re-exported types so that library users interact with one import path.
type (
	// Event is a kernel event-log entry (process lifecycle, injection
	// detections, forensic dumps, Sebek keystrokes).
	Event = kernel.Event
	// EventKind classifies events.
	EventKind = kernel.EventKind
	// Process is a guest process handle.
	Process = kernel.Process
	// RunResult reports why Run returned.
	RunResult = kernel.RunResult
	// ResponseMode selects the reaction to a detected injection.
	ResponseMode = core.ResponseMode
	// CostModel maps architectural events to simulated cycles.
	CostModel = cpu.CostModel
	// Program is a loaded SELF guest image.
	Program = loader.Program
	// Signal is a kernel kill reason.
	Signal = kernel.Signal
	// StopReason explains why Run stopped.
	StopReason = kernel.StopReason
	// SplitStats counts split-engine activity.
	SplitStats = core.Stats
	// ChaosConfig sets per-fault-class injection rates for the chaos engine.
	ChaosConfig = chaos.Config
	// ChaosStats counts injected faults by class.
	ChaosStats = chaos.Stats
	// TelemetryHub bundles the metrics registry and span buffer of an
	// instrumented machine (Config.Telemetry).
	TelemetryHub = telemetry.Hub
	// Span is one recorded fault-handling episode or instant.
	Span = telemetry.Span
)

// ChaosDefaults returns the default per-class chaos injection rates.
func ChaosDefaults() ChaosConfig { return chaos.Defaults() }

// Re-exported constants.
const (
	// Break terminates the exploited process (the default response, §4.5.1).
	Break = core.Break
	// Observe logs and lets the attack continue under monitoring (§4.5.2).
	Observe = core.Observe
	// Forensics dumps the injected shellcode and can substitute forensic
	// shellcode (§4.5.3).
	Forensics = core.Forensics
	// Recovery transfers control to the application's registered recovery
	// handler (the extension §4.5 sketches as future work).
	Recovery = core.Recovery

	// Event kinds.
	EvProcessStart      = kernel.EvProcessStart
	EvProcessExit       = kernel.EvProcessExit
	EvSignal            = kernel.EvSignal
	EvInjectionDetected = kernel.EvInjectionDetected
	EvInjectionObserved = kernel.EvInjectionObserved
	EvForensicDump      = kernel.EvForensicDump
	EvShellSpawned      = kernel.EvShellSpawned
	EvSebekLine          = kernel.EvSebekLine
	EvLibraryLoad        = kernel.EvLibraryLoad
	EvInvariantViolation = kernel.EvInvariantViolation
	EvMachineCheck       = kernel.EvMachineCheck

	// Signals.
	SIGSEGV = kernel.SIGSEGV
	SIGILL  = kernel.SIGILL
	SIGFPE  = kernel.SIGFPE

	// Run stop reasons.
	ReasonAllDone       = kernel.ReasonAllDone
	ReasonWaitingInput  = kernel.ReasonWaitingInput
	ReasonBudget        = kernel.ReasonBudget
	ReasonDeadlock      = kernel.ReasonDeadlock
	ReasonInternalError = kernel.ReasonInternalError
)

// Protection selects the memory-protection policy for a machine.
type Protection int

// Protection policies.
const (
	// ProtNone runs unprotected (legacy von Neumann behavior).
	ProtNone Protection = iota
	// ProtNX models hardware execute-disable (DEP / PaX PAGEEXEC).
	ProtNX
	// ProtSplit runs the split-memory engine stand-alone on legacy
	// hardware (no NX) — the paper's worst-case deployment.
	ProtSplit
	// ProtSplitNX combines split memory with execute-disable hardware:
	// only the configured subset of pages (mixed-only or a fraction) is
	// split; the rest is NX-protected (§4.2.1, Fig. 9).
	ProtSplitNX
)

// String names the protection policy.
func (p Protection) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtNX:
		return "nx"
	case ProtSplit:
		return "split"
	case ProtSplitNX:
		return "split+nx"
	}
	return "unknown"
}

// Config assembles a simulated machine, kernel and protection policy.
type Config struct {
	Protection Protection
	Response   ResponseMode // split modes only

	// SplitFraction splits only this fraction of pages (ProtSplitNX);
	// 0 or 1 means all pages.
	SplitFraction float64
	// MixedOnly splits only write+execute pages (ProtSplitNX).
	MixedOnly bool
	// ForensicShellcode replaces detected payloads in Forensics mode.
	ForensicShellcode []byte
	// SoftTLB models a software-managed-TLB architecture (§4.7): the split
	// engine loads the TLBs directly instead of using the x86 walk and
	// single-step tricks.
	SoftTLB bool
	// LazyTwins defers code-twin allocation for data pages until a fetch
	// reaches them (§5.1's envisioned demand-paging optimization), roughly
	// halving the split system's memory overhead.
	LazyTwins bool

	// Chaos enables deterministic adversarial fault injection (spurious TLB
	// evictions and flushes, stale-entry retention, spurious debug traps,
	// double-delivered page faults, DRAM bit flips, forced preemption) at
	// the configured per-class rates. The zero value injects nothing.
	Chaos ChaosConfig
	// Paranoid enables the split engine's invariant auditor: after every
	// protector entry point the Harvard invariants are re-verified across
	// both TLBs and all pagetables; violations surface as
	// EvInvariantViolation events, never a panic. Expensive; meant for
	// tests and chaos runs.
	Paranoid bool

	// Machine knobs. Zero values select the paper's testbed defaults
	// (PIII-600 cost model, 32/64-entry ITLB/DTLB, 64 MiB RAM).
	CostModel CostModel
	ITLBSize  int
	DTLBSize  int
	PhysBytes int

	// NoDecodeCache disables the predecoded-instruction fast path and
	// forces the slow fetch/decode loop. The fast path is architecturally
	// invisible (the differential-execution oracle proves it retires the
	// identical stream), so this knob exists for that oracle and for
	// benchmarking the fast path itself, not for correctness.
	NoDecodeCache bool

	// NoSuperblocks disables the superblock threaded-code engine — the
	// tier above the predecode cache, which compiles hot straight-line
	// regions into arrays of pre-bound closures — forcing per-instruction
	// dispatch. Like NoDecodeCache this knob exists for the three-arm
	// differential oracle and the fastpath bench, not for correctness.
	NoSuperblocks bool

	// TraceDepth, when positive, records the last N executed instructions
	// in a ring buffer (see TraceTail). Slows simulation slightly. With a
	// split engine active, injection-detection events carry the ring's
	// contents as a disassembly listing (Event.Trace).
	TraceDepth int

	// Telemetry compiles the telemetry hub into the machine: a metrics
	// registry (fault-handling latency histograms, TLB/engine counters,
	// split-activity heatmaps) and a span buffer recording each
	// fault-handling episode. Off by default; when off, every instrument
	// call site short-circuits on a nil check and the hot paths are
	// unaffected (see BenchmarkTelemetryOnOff).
	Telemetry bool
	// TelemetrySpanCap bounds the span ring (default 8192 spans; the
	// oldest are overwritten once full).
	TelemetrySpanCap int

	// Kernel knobs.
	Timeslice      uint64
	RandomizeStack bool
	Seed           int64
	TraceSyscalls  bool
	EventHook      func(Event)
}

// Machine bundles the simulated hardware, the kernel, and the protection
// engine.
type Machine struct {
	cfg    Config
	mach   *cpu.Machine
	kern   *kernel.Kernel
	split  *core.Engine
	nxEng  *nx.Engine
	traces *trace.Ring
	inj    *chaos.Injector
	hub    *telemetry.Hub
}

// New builds a machine according to cfg. Configurations no machine can
// honor are rejected up front with an error wrapping ErrBadConfig (see
// Config.Validate); any later failure is a construction problem, not the
// caller's.
func New(cfg Config) (*Machine, error) { return newMachine(cfg, nil) }

// newMachine is New with an optional prebuilt physical memory, the seam the
// Image boot fast path uses to hand in a copy-on-write attachment
// (mem.BootPhysical) instead of paying for a cold allocator build.
func newMachine(cfg Config, phys *mem.Physical) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nxEnabled := cfg.Protection == ProtNX || cfg.Protection == ProtSplitNX
	mach, err := cpu.New(cpu.Config{
		PhysBytes:   cfg.PhysBytes,
		ITLBSize:    cfg.ITLBSize,
		DTLBSize:    cfg.DTLBSize,
		Cost:        cfg.CostModel,
		NXEnabled:   nxEnabled,
		DecodeCache: !cfg.NoDecodeCache,
		Superblocks: !cfg.NoSuperblocks,
		Phys:        phys,
	})
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, mach: mach}
	if cfg.Telemetry {
		m.hub = telemetry.NewHub(telemetry.Options{SpanCap: cfg.TelemetrySpanCap})
	}
	// The injector is created (and assigned) only when some fault class is
	// actually enabled: a typed-nil *chaos.Injector in the Chaos interface
	// field would defeat the machine's `m.Chaos != nil` fast path.
	if cfg.Chaos.Enabled() {
		m.inj = chaos.New(cfg.Chaos, mach.Phys)
		mach.Chaos = m.inj
	}
	if cfg.TraceDepth > 0 {
		m.traces = trace.NewRing(cfg.TraceDepth)
		mach.TraceHook = func(eip uint32, in isa.Instr) {
			m.traces.Add(trace.Entry{Cycles: mach.Cycles, EIP: eip, Instr: in})
		}
	}

	var prot kernel.Protector
	switch cfg.Protection {
	case ProtNone:
		prot = kernel.Unprotected{}
	case ProtNX:
		m.nxEng = nx.New()
		prot = m.nxEng
	case ProtSplit:
		m.split = core.New(core.Config{
			Response:          cfg.Response,
			ForensicShellcode: cfg.ForensicShellcode,
			Seed:              uint64(cfg.Seed),
			SoftTLB:           cfg.SoftTLB,
			LazyTwins:         cfg.LazyTwins,
			Paranoid:          cfg.Paranoid,
			StaleVPN:          m.staleVPN(),
			Hub:               m.hub,
			TraceRing:         m.traces,
		})
		prot = m.split
	case ProtSplitNX:
		m.split = core.New(core.Config{
			Response:          cfg.Response,
			Fraction:          cfg.SplitFraction,
			MixedOnly:         cfg.MixedOnly,
			UnsplitNX:         true,
			Seed:              uint64(cfg.Seed),
			ForensicShellcode: cfg.ForensicShellcode,
			SoftTLB:           cfg.SoftTLB,
			LazyTwins:         cfg.LazyTwins,
			Paranoid:          cfg.Paranoid,
			StaleVPN:          m.staleVPN(),
			Hub:               m.hub,
			TraceRing:         m.traces,
		})
		prot = m.split
	default:
		return nil, fmt.Errorf("splitmem: unknown protection %d", cfg.Protection)
	}

	kcfg := kernel.Config{
		Machine:        mach,
		Protector:      prot,
		Timeslice:      cfg.Timeslice,
		RandomizeStack: cfg.RandomizeStack,
		RandSeed:       cfg.Seed,
		TraceSyscalls:  cfg.TraceSyscalls,
		EventHook:      cfg.EventHook,
	}
	if m.hub != nil {
		// Chain an instant-span recorder in front of any user hook so every
		// kernel event lands on the timeline (detections, machine checks,
		// invariant violations, process lifecycle).
		user := kcfg.EventHook
		spans := m.hub.Spans()
		kcfg.EventHook = func(ev Event) {
			spans.Instant("ev:"+ev.Kind.String(), ev.PID, ev.Addr>>12, mach.Cycles)
			if user != nil {
				user(ev)
			}
		}
	}
	if m.inj != nil {
		kcfg.Chaos = m.inj
	}
	kern, err := kernel.New(kcfg)
	if err != nil {
		return nil, err
	}
	m.kern = kern
	if m.hub != nil {
		r := m.hub.Registry()
		mach.RegisterTelemetry(r) // CPU + both TLBs + physical memory
		kern.RegisterTelemetry(r)
		if m.inj != nil {
			m.inj.RegisterTelemetry(r)
		}
	}
	return m, nil
}

// staleVPN returns the auditor's chaos-attribution query, or nil when no
// injector is active.
func (m *Machine) staleVPN() func(uint32) bool {
	if m.inj == nil {
		return nil
	}
	return m.inj.StaleVPN
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Kernel exposes the underlying kernel for advanced use (event filtering,
// direct process control).
func (m *Machine) Kernel() *kernel.Kernel { return m.kern }

// CPU exposes the underlying machine (stats, TLBs).
func (m *Machine) CPU() *cpu.Machine { return m.mach }

// SplitEngine returns the split-memory engine, or nil when another policy
// is active.
func (m *Machine) SplitEngine() *core.Engine { return m.split }

// Protection returns the active policy.
func (m *Machine) Protection() Protection { return m.cfg.Protection }

// LoadProgram spawns a process from a SELF image.
func (m *Machine) LoadProgram(p *Program, name string) (*Process, error) {
	return m.kern.Spawn(p, kernel.ProcOptions{Name: name})
}

// LoadAsm assembles S86 source and spawns a process from it.
func (m *Machine) LoadAsm(src, name string) (*Process, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return m.LoadProgram(prog, name)
}

// LoadBinary parses a serialized SELF image and spawns a process.
func (m *Machine) LoadBinary(image []byte, name string) (*Process, error) {
	prog, err := loader.Unmarshal(image)
	if err != nil {
		return nil, err
	}
	return m.LoadProgram(prog, name)
}

// Run drives the scheduler; maxCycles 0 means no budget. See
// kernel.Kernel.Run for the contract. A simulator bug that panics inside
// the kernel is contained: Run reports ReasonInternalError with the panic
// value, host stack, and (when TraceDepth is set) the guest trace tail.
// Run is RunContext with a background context; callers that need
// cancellation or deadlines use RunContext directly.
func (m *Machine) Run(maxCycles uint64) RunResult {
	return m.RunContext(context.Background(), maxCycles)
}

// Cycles returns total simulated cycles elapsed.
func (m *Machine) Cycles() uint64 { return m.mach.Cycles }

// Events returns the kernel event log.
func (m *Machine) Events() []Event { return m.kern.Events() }

// EventsOf filters the event log by kind.
func (m *Machine) EventsOf(kind EventKind) []Event { return m.kern.EventsOf(kind) }

// EventsJSONL renders the event log as JSON Lines for external collectors
// (honeypot pipelines ingesting observe-mode detections and Sebek
// keystrokes).
func (m *Machine) EventsJSONL() ([]byte, error) { return kernel.EventsJSONL(m.kern.Events()) }

// Stats aggregates machine, TLB, and protection-engine statistics.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	PageFaults   uint64
	DebugTraps   uint64
	CtxSwitches  uint64
	ITLBHits     uint64
	ITLBMisses   uint64
	DTLBHits     uint64
	DTLBMisses   uint64
	Syscalls       uint64
	KernelFaults   uint64     // demand-paging + copy-on-write faults
	SpuriousFaults uint64     // benign refaults absorbed (stale TLB, double delivery)
	MemFaults      uint64     // contained physical-memory machine checks
	Split          SplitStats // zero when no split engine is active
	Chaos          ChaosStats // zero when no chaos injection is configured

	// Fast-path health (predecode cache and superblock engine). Host-side
	// only: these are the sole counters allowed to differ between runs of
	// the same program under different engine configurations.
	DecodeHits          uint64
	DecodeMisses        uint64
	DecodeInvalidations uint64

	SuperblockCompiled      uint64
	SuperblockEntered       uint64
	SuperblockSideExits     uint64
	SuperblockInvalidations uint64

	// Frame-store sharing (warm pools / forks). Host-side only, like the
	// fast-path counters: a forked machine shares frames its cold-booted
	// twin owns outright, so these legitimately differ between the two and
	// the differential oracle scrubs them the same way.
	MemSharedFrames  uint64
	MemPrivateFrames uint64
	MemCowCopies     uint64
}

// Stats snapshots current counters.
func (m *Machine) Stats() Stats {
	s := Stats{
		Cycles:       m.mach.Cycles,
		Instructions: m.mach.Stats.Instructions,
		PageFaults:   m.mach.Stats.PageFaults,
		DebugTraps:   m.mach.Stats.DebugTraps,
		CtxSwitches:  m.mach.Stats.CtxSwitches,
	}
	s.DecodeHits = m.mach.Stats.DecodeHits
	s.DecodeMisses = m.mach.Stats.DecodeMisses
	s.DecodeInvalidations = m.mach.Stats.DecodeInvalidations
	s.SuperblockCompiled = m.mach.Stats.SuperblockCompiled
	s.SuperblockEntered = m.mach.Stats.SuperblockEntered
	s.SuperblockSideExits = m.mach.Stats.SuperblockSideExits
	s.SuperblockInvalidations = m.mach.Stats.SuperblockInvalidations
	s.ITLBHits, s.ITLBMisses, _, _ = m.mach.ITLB.Stats()
	s.DTLBHits, s.DTLBMisses, _, _ = m.mach.DTLB.Stats()
	s.Syscalls, s.KernelFaults, _ = m.kern.Counters()
	s.SpuriousFaults = m.kern.SpuriousFaults()
	s.MemFaults = m.mach.Phys.Faults()
	s.MemSharedFrames = uint64(m.mach.Phys.SharedFrames())
	s.MemPrivateFrames = uint64(m.mach.Phys.PrivateFrames())
	s.MemCowCopies = m.mach.Phys.CowCopies()
	if m.split != nil {
		s.Split = m.split.Stats()
	}
	if m.inj != nil {
		s.Chaos = m.inj.Stats()
	}
	return s
}

// Telemetry returns the machine's telemetry hub, or nil unless
// Config.Telemetry was set. All hub and instrument methods are nil-safe,
// so callers may use the result unconditionally.
func (m *Machine) Telemetry() *telemetry.Hub { return m.hub }

// procNames maps guest PIDs to process names for trace exporters.
func (m *Machine) procNames() map[int]string {
	names := map[int]string{}
	for _, p := range m.kern.Processes() {
		names[p.PID] = p.Name
	}
	return names
}

// WriteTrace writes the recorded spans as Chrome trace_event JSON —
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing, with
// one process row per guest process and one thread track per virtual page.
// Timestamps are simulated cycles rendered as microseconds. An error is
// returned when telemetry is disabled.
func (m *Machine) WriteTrace(w io.Writer) error {
	if m.hub == nil {
		return fmt.Errorf("splitmem: telemetry is disabled (set Config.Telemetry)")
	}
	return m.hub.Spans().WriteTraceEvents(w, m.procNames())
}

// WriteMetricsPrometheus writes every registered metric in the Prometheus
// text exposition format. An error is returned when telemetry is disabled.
func (m *Machine) WriteMetricsPrometheus(w io.Writer) error {
	if m.hub == nil {
		return fmt.Errorf("splitmem: telemetry is disabled (set Config.Telemetry)")
	}
	return m.hub.Registry().WritePrometheus(w)
}

// WriteMetricsJSONL writes every registered metric as JSON Lines. An error
// is returned when telemetry is disabled.
func (m *Machine) WriteMetricsJSONL(w io.Writer) error {
	if m.hub == nil {
		return fmt.Errorf("splitmem: telemetry is disabled (set Config.Telemetry)")
	}
	return m.hub.Registry().WriteMetricsJSONL(w)
}

// WriteSpansJSONL writes the recorded spans as JSON Lines. An error is
// returned when telemetry is disabled.
func (m *Machine) WriteSpansJSONL(w io.Writer) error {
	if m.hub == nil {
		return fmt.Errorf("splitmem: telemetry is disabled (set Config.Telemetry)")
	}
	return m.hub.Spans().WriteSpansJSONL(w)
}

// TraceTail returns the recorded execution trace as a disassembly listing
// (empty unless Config.TraceDepth was set).
func (m *Machine) TraceTail() string {
	if m.traces == nil {
		return ""
	}
	return m.traces.String()
}

// Assemble compiles S86 assembly to a SELF program (re-export of the
// assembler for library users).
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// ExitShellcode returns the paper's published exit(0) forensic shellcode.
func ExitShellcode() []byte { return core.ExitShellcode() }

// TLBStats returns hit/miss/eviction/flush counts of a TLB; helper for
// examples and tools.
func TLBStats(t *tlb.TLB) (hits, misses, evictions, flushes uint64) { return t.Stats() }
