package splitmem_test

// CI guard for the warm-pool fork fast path.
//
// TestForkPoolSpeedupGuard checks that booting a worker from a sealed Image
// (copy-on-write attach of frames and allocator state) beats a cold start
// (assemble + build machine + load program) by a wide margin on every
// cataloged job class. Like the other host-timing guards it is env-gated,
// because wall-clock ratios are noisy on shared runners:
//
//	SPLITMEM_FORKPOOL_GUARD=1 go test -run ForkPoolSpeedupGuard -v .
//
// The determinism side needs no separate guard: ForkPool itself refuses to
// report a measurement where the forked run's cycle or instruction count
// differs from the cold run's.

import (
	"os"
	"testing"

	"splitmem/internal/bench"
)

// forkPoolSpeedupFloor is the minimum acceptable cold-start/fork-start ratio
// (measured ~9-12x; the floor leaves headroom for slow CI hosts).
const forkPoolSpeedupFloor = 5.0

func TestForkPoolSpeedupGuard(t *testing.T) {
	if os.Getenv("SPLITMEM_FORKPOOL_GUARD") == "" {
		t.Skip("host-timing guard; set SPLITMEM_FORKPOOL_GUARD=1 to run")
	}
	_, runs, err := bench.ForkPool()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if s := r.Speedup(); s < forkPoolSpeedupFloor {
			t.Errorf("%s: fork start buys only %.1fx over cold start, floor %.1fx (cold %.1fµs, fork %.1fµs)",
				r.Workload, s, forkPoolSpeedupFloor,
				float64(r.ColdNS)/1e3, float64(r.ForkNS)/1e3)
		} else {
			t.Logf("%s: %.1fx speedup (cold %.1fµs, fork %.1fµs), %d KiB shared per fork",
				r.Workload, s, float64(r.ColdNS)/1e3, float64(r.ForkNS)/1e3, r.SharedKiB())
		}
		if r.SharedFrames == 0 {
			t.Errorf("%s: fork shares no frames with its template — the guard is vacuous", r.Workload)
		}
	}
}
