package splitmem_test

// FuzzSuperblockInvalidation: differential fuzzing of the superblock
// engine's invalidation machinery. Each fuzz input deterministically
// generates an S86 program whose hot loops rewrite their own instruction
// bytes (imm-byte patches at two different sites, inside and outside the
// inner loop), optionally under chaos injection (TLB flushes bump the decode
// epoch, bit flips bump write generations mid-block). The program runs under
// ProtNone (where self-modification really changes the fetched bytes) and
// ProtSplit (where stores land in the data twin and the split engine's
// restriction machinery drives invalidation), each with superblocks on and
// off — and the two engine arms must retire identical instruction streams,
// cycles, stats and event logs. Any divergence is a stale compiled block
// executing bytes the guest already overwrote.

import (
	"fmt"
	"strings"
	"testing"

	"splitmem"
	"splitmem/internal/workloads"
)

// sbFuzzOps is the arithmetic menu the generator draws inner-loop bodies
// from. Every entry is total (no traps, no memory) so generated programs
// always terminate.
var sbFuzzOps = []string{
	"add eax, 3",
	"sub eax, 1",
	"xor eax, ebx",
	"or ebx, 5",
	"and eax, 0xFFFF",
	"mul ebx, 3",
	"shl eax, 1",
	"shr ebx, 1",
	"add eax, ebx",
	"mov edx, eax",
}

// sbFuzzProgram derives a self-modifying hot-loop program from fuzz bytes.
// Loop counts stay above the hotness threshold so blocks compile, and the
// patched bytes are always instruction immediates, so every mutation decodes
// cleanly and the program reaches its exit syscall.
func sbFuzzProgram(data []byte) string {
	at := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	outer := 17 + at(0)%24
	inner := 17 + at(1)%12
	nops := 2 + at(2)%5
	var ops strings.Builder
	for i := 0; i < nops; i++ {
		fmt.Fprintf(&ops, "    %s\n", sbFuzzOps[at(3+i)%len(sbFuzzOps)])
	}
	// Patch target: the low imm byte of `site` (mov edx, imm32: imm at
	// offset 1) or of `body` (add eax, imm32: imm at offset 2). The second
	// rewrites the hot inner loop itself, forcing a reheat per outer pass.
	target := "site+1"
	if at(3+nops)%2 == 1 {
		target = "body+2"
	}
	return fmt.Sprintf(`
.section code 0x08048000 rwx
.entry _start
_start:
    mov esi, %d
    mov edi, 0
outer:
    mov ecx, %d
body:
    add eax, 17
%s    sub ecx, 1
    jnz body
    mov ebx, %s
    mov eax, esi
    storeb [ebx], eax
site:
    mov edx, 0x11
    add edi, edx
    sub esi, 1
    jnz outer
    and edi, 63
    mov ebx, edi
    mov eax, 1
    int 0x80
`, outer, inner, ops.String(), target)
}

func FuzzSuperblockInvalidation(f *testing.F) {
	f.Add([]byte{})                           // minimal: fixed counts, site patch
	f.Add([]byte{7, 3, 4, 1, 2, 9, 0x40})     // mixed ops, body patch
	f.Add([]byte{255, 0, 1, 8, 8, 8, 8, 1})   // max outer, uniform body
	f.Add([]byte("superblocks"))              // chaos arm (odd last byte)
	f.Add([]byte{0, 11, 6, 5, 4, 3, 2, 1, 3}) // chaos arm, body patch

	f.Fuzz(func(t *testing.T, data []byte) {
		prog := workloads.Program{Name: "sbfuzz", Src: sbFuzzProgram(data)}
		var chaos splitmem.ChaosConfig
		if len(data) > 0 && data[len(data)-1]%2 == 1 {
			// Epoch bumps (flush), TLB churn and mid-block write-generation
			// bumps (bit flips), drawn from a seed the fuzzer controls.
			chaos = splitmem.ChaosConfig{
				Seed:      0x5B ^ uint64(data[0])<<8 ^ uint64(len(data)),
				TLBFlush:  0.002,
				ITLBEvict: 0.01,
				BitFlip:   0.0005,
			}
		}
		for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
			cfg := splitmem.Config{Protection: prot, Paranoid: true, Chaos: chaos}
			on := runWorkload(t, prog, cfg)
			offCfg := cfg
			offCfg.NoSuperblocks = true
			off := runWorkload(t, prog, offCfg)
			compareDigests(t, fmt.Sprintf("sbfuzz/%v", prot), on, off)
		}
	})
}
