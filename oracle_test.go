package splitmem_test

// The differential-execution oracle: the machine's host-side fast paths —
// the predecode cache and the superblock threaded-code engine — must be
// architecturally invisible. Every workload, every attack form of the
// extended Wilander grid, and every real-world scenario is executed by THREE
// engine arms (superblocks + predecode, predecode only, pure interpreter)
// and all arms must agree pairwise on EVERYTHING the architecture defines:
// the full retired-instruction stream (EIP + decoded fields, hashed online),
// simulated cycles, kernel event log bytes, exit status, and every statistic
// except the Decode*/Superblock* counters themselves (the only
// host-side-only numbers in Stats).
//
// The simulator is deterministic, so any divergence is a real coherence bug
// in a fast path, never noise.

import (
	"bytes"
	"fmt"
	"testing"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/guest"
	"splitmem/internal/isa"
	"splitmem/internal/workloads"
)

// scrubDecode zeroes the host-side counters — decode cache, superblock
// engine, and frame-store sharing — the only Stats fields allowed to differ
// between arms (a forked arm shares frames its cold-booted twin owns
// outright; neither difference is architecturally observable).
func scrubDecode(s splitmem.Stats) splitmem.Stats {
	s.DecodeHits, s.DecodeMisses, s.DecodeInvalidations = 0, 0, 0
	s.SuperblockCompiled, s.SuperblockEntered = 0, 0
	s.SuperblockSideExits, s.SuperblockInvalidations = 0, 0
	s.MemSharedFrames, s.MemPrivateFrames, s.MemCowCopies = 0, 0, 0
	return s
}

// engineArm names one execution-engine configuration of the oracle.
type engineArm struct {
	name string
	mut  func(*splitmem.Config)
}

// engineArms: the three arms, fastest first. Pairwise comparison of
// consecutive arms covers all pairs transitively.
var engineArms = []engineArm{
	{"superblock", func(*splitmem.Config) {}},
	{"predecode", func(c *splitmem.Config) { c.NoSuperblocks = true }},
	{"interp", func(c *splitmem.Config) { c.NoSuperblocks, c.NoDecodeCache = true, true }},
}

// checkArmVacuity proves each arm really ran on its intended engine: the
// superblock arm must have entered compiled blocks, the predecode arm must
// have hit the decode cache without superblocks, and the interpreter arm must
// have used neither.
func checkArmVacuity(t *testing.T, arm string, s splitmem.Stats) {
	t.Helper()
	switch arm {
	case "superblock":
		if s.SuperblockEntered == 0 {
			t.Error("superblock arm never entered a compiled block — oracle is vacuous")
		}
	case "predecode":
		if s.SuperblockEntered != 0 {
			t.Error("predecode arm entered a superblock — oracle is vacuous")
		}
		if s.DecodeHits == 0 {
			t.Error("predecode arm never hit the decode cache — oracle is vacuous")
		}
	case "interp":
		if s.SuperblockEntered != 0 || s.DecodeHits != 0 {
			t.Errorf("interpreter arm used a fast path (sb %d, decode %d) — oracle is vacuous",
				s.SuperblockEntered, s.DecodeHits)
		}
	}
}

// traceHash folds one retired instruction into an FNV-1a style running
// hash; the final value fingerprints the entire execution stream.
func traceHash(h uint64, eip uint32, in isa.Instr) uint64 {
	const prime = 1099511628211
	for _, w := range []uint64{
		uint64(eip), uint64(in.Op), uint64(in.R1), uint64(in.R2),
		uint64(in.Imm), uint64(in.Size),
	} {
		h = (h ^ w) * prime
	}
	return h
}

// workloadDigest is everything architecturally observable about one run.
type workloadDigest struct {
	trace      uint64
	retired    uint64
	cycles     uint64
	reason     splitmem.StopReason
	exited     bool
	status     int
	stats  splitmem.Stats
	events []byte
	raw    splitmem.Stats // unscrubbed; not compared, proves arm vacuity
}

func runWorkload(t *testing.T, prog workloads.Program, cfg splitmem.Config) workloadDigest {
	t.Helper()
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := workloadDigest{trace: 14695981039346656037}
	m.CPU().TraceHook = func(eip uint32, in isa.Instr) {
		d.trace = traceHash(d.trace, eip, in)
	}
	p, err := m.LoadAsm(prog.Src, prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	res := m.Run(40_000_000_000)
	d.reason = res.Reason
	d.exited, d.status = p.Exited()
	s := m.Stats()
	d.raw = s
	d.stats = scrubDecode(s)
	d.retired = s.Instructions
	d.cycles = s.Cycles
	d.events, err = m.EventsJSONL()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compareDigests(t *testing.T, name string, fast, slow workloadDigest) {
	t.Helper()
	if fast.trace != slow.trace || fast.retired != slow.retired {
		t.Errorf("%s: retired streams diverge: fast %d instrs (hash %#x), slow %d (hash %#x)",
			name, fast.retired, fast.trace, slow.retired, slow.trace)
	}
	if fast.cycles != slow.cycles {
		t.Errorf("%s: simulated cycles diverge: %d vs %d", name, fast.cycles, slow.cycles)
	}
	if fast.reason != slow.reason || fast.exited != slow.exited || fast.status != slow.status {
		t.Errorf("%s: outcomes diverge: fast(%v,%v,%d) slow(%v,%v,%d)",
			name, fast.reason, fast.exited, fast.status, slow.reason, slow.exited, slow.status)
	}
	if fast.stats != slow.stats {
		t.Errorf("%s: stats diverge:\nfast %+v\nslow %+v", name, fast.stats, slow.stats)
	}
	if !bytes.Equal(fast.events, slow.events) {
		t.Errorf("%s: event logs diverge:\nfast:\n%s\nslow:\n%s", name, fast.events, slow.events)
	}
}

// TestOracleWorkloads: every cataloged workload under every protection
// policy, all three engine arms pairwise.
func TestOracleWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	prots := []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit, splitmem.ProtSplitNX,
	}
	for _, prog := range workloads.Catalog() {
		for _, prot := range prots {
			prog, prot := prog, prot
			t.Run(fmt.Sprintf("%s/%v", prog.Name, prot), func(t *testing.T) {
				digests := make([]workloadDigest, len(engineArms))
				for i, arm := range engineArms {
					cfg := splitmem.Config{Protection: prot}
					arm.mut(&cfg)
					digests[i] = runWorkload(t, prog, cfg)
					checkArmVacuity(t, arm.name, digests[i].raw)
				}
				for i := 1; i < len(engineArms); i++ {
					pair := engineArms[i-1].name + "-vs-" + engineArms[i].name
					compareDigests(t, prog.Name+"/"+pair, digests[i-1], digests[i])
				}
			})
		}
	}
}

// pseudoCycle derives a deterministic pseudo-random snapshot point in
// [1, span] from a name, so "snapshot at a random cycle" is reproducible.
func pseudoCycle(name string, span uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	if span == 0 {
		return 1
	}
	return 1 + h%span
}

// runWorkloadResumed is runWorkload interrupted by a checkpoint: the machine
// runs for roughly snapAt cycles, is serialized with Snapshot, discarded,
// rebuilt with Restore, and resumed to completion. Along the way it also
// proves the image is a fixed point: snapshotting the restored machine must
// reproduce the original image byte for byte.
func runWorkloadResumed(t *testing.T, prog workloads.Program, cfg splitmem.Config, snapAt uint64) workloadDigest {
	t.Helper()
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := workloadDigest{trace: 14695981039346656037}
	hook := func(eip uint32, in isa.Instr) {
		d.trace = traceHash(d.trace, eip, in)
	}
	m.CPU().TraceHook = hook
	p, err := m.LoadAsm(prog.Src, prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	pid := p.PID
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	res := m.Run(snapAt)
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := splitmem.Restore(img)
	if err != nil {
		t.Fatalf("restore at cycle %d: %v", snapAt, err)
	}
	img2, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Errorf("%s: snapshot of the restored machine differs from the original image (%d vs %d bytes)",
			prog.Name, len(img2), len(img))
	}
	m = m2
	m.CPU().TraceHook = hook
	if res.Reason == splitmem.ReasonBudget || res.Reason == splitmem.ReasonWaitingInput {
		res = m.Run(40_000_000_000)
	}
	p2, ok := m.Kernel().Process(pid)
	if !ok {
		t.Fatalf("%s: pid %d lost across restore", prog.Name, pid)
	}
	d.reason = res.Reason
	d.exited, d.status = p2.Exited()
	s := m.Stats()
	d.stats = scrubDecode(s)
	d.retired = s.Instructions
	d.cycles = s.Cycles
	d.events, err = m.EventsJSONL()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runWorkloadForked is runWorkload interrupted by a fork: the machine runs
// for roughly forkAt cycles and Fork()s, and then BOTH machines — parent and
// child, sharing every physical frame copy-on-write from that instant — run
// to completion independently. The helper proves, in order:
//
//  1. the child is bit-identical to the parent at the fork point (their
//     Snapshot images are byte-equal), and taking the fork did not perturb
//     the parent (its snapshot before and after the fork is byte-equal);
//  2. parent and child retire identical instruction streams, cycles, stats
//     and event-log bytes despite hammering the same shared frames;
//
// and returns the child's digest so callers can hold it against an
// uninterrupted cold-booted run — forked == cold-booted, the warm-pool
// determinism gate.
func runWorkloadForked(t *testing.T, prog workloads.Program, cfg splitmem.Config, forkAt uint64) workloadDigest {
	t.Helper()
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := workloadDigest{trace: 14695981039346656037}
	m.CPU().TraceHook = func(eip uint32, in isa.Instr) {
		prefix.trace = traceHash(prefix.trace, eip, in)
	}
	p, err := m.LoadAsm(prog.Src, prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	pid := p.PID
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	res := m.Run(forkAt)

	before, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	child, err := m.Fork()
	if err != nil {
		t.Fatalf("fork at cycle %d: %v", forkAt, err)
	}
	after, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("%s: taking a fork perturbed the parent (snapshot %d vs %d bytes)",
			prog.Name, len(before), len(after))
	}
	childSnap, err := child.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, childSnap) {
		t.Errorf("%s: forked machine is not bit-identical to its parent at the fork point (%d vs %d bytes)",
			prog.Name, len(childSnap), len(before))
	}

	finish := func(fm *splitmem.Machine, r splitmem.RunResult) workloadDigest {
		d := prefix // copy: both runs extend the same retired-stream prefix
		fm.CPU().TraceHook = func(eip uint32, in isa.Instr) {
			d.trace = traceHash(d.trace, eip, in)
		}
		if r.Reason == splitmem.ReasonBudget || r.Reason == splitmem.ReasonWaitingInput {
			r = fm.Run(40_000_000_000)
		}
		fp, ok := fm.Kernel().Process(pid)
		if !ok {
			t.Fatalf("%s: pid %d lost across fork", prog.Name, pid)
		}
		d.reason = r.Reason
		d.exited, d.status = fp.Exited()
		s := fm.Stats()
		d.raw = s
		d.stats = scrubDecode(s)
		d.retired = s.Instructions
		d.cycles = s.Cycles
		d.events, err = fm.EventsJSONL()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	childD := finish(child, res)
	parentD := finish(m, res)
	compareDigests(t, prog.Name+"/parent-vs-child", parentD, childD)
	child.Close()
	m.Close()
	return childD
}

// TestOracleForkWorkloads: every workload under every protection policy,
// cold-booted vs forked-at-a-pseudo-random-cycle. The forked machine (and
// its parent, running on after the fork over the same shared frames) must
// retire the identical instruction stream and end with identical cycles,
// stats and event-log bytes — the fork is architecturally invisible.
func TestOracleForkWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	prots := []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit, splitmem.ProtSplitNX,
	}
	for _, prog := range workloads.Catalog() {
		for _, prot := range prots {
			prog, prot := prog, prot
			t.Run(fmt.Sprintf("%s/%v", prog.Name, prot), func(t *testing.T) {
				cfg := splitmem.Config{Protection: prot, RandomizeStack: true, Seed: 7}
				base := runWorkload(t, prog, cfg)
				forkAt := pseudoCycle("fork"+prog.Name+prot.String(), base.cycles)
				forked := runWorkloadForked(t, prog, cfg, forkAt)
				compareDigests(t, fmt.Sprintf("%s@fork%d", prog.Name, forkAt), base, forked)
			})
		}
	}
}

// TestOracleForkWilander: all 32 attack forms of the extended Wilander grid,
// forked mid-attack vs uninterrupted, under both split deployments.
// Detection must land on the same cycle with byte-identical events whether
// the attacked machine was cold-booted or forked from a warm parent.
func TestOracleForkWilander(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	for _, prot := range []splitmem.Protection{splitmem.ProtSplit, splitmem.ProtSplitNX} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			for _, tech := range attacks.AllTechniques() {
				for _, seg := range attacks.Segments() {
					src, stdin, err := attacks.OneShot(tech, seg)
					if err != nil {
						continue // form not applicable
					}
					name := fmt.Sprintf("%v/%v", tech, seg)
					t.Run(name, func(t *testing.T) {
						prog := workloads.Program{Name: "wilander", Src: guest.WithCRT(src), Input: string(stdin)}
						cfg := splitmem.Config{Protection: prot}
						base := runWorkload(t, prog, cfg)
						forkAt := pseudoCycle("fork"+name+prot.String(), base.cycles)
						forked := runWorkloadForked(t, prog, cfg, forkAt)
						compareDigests(t, name, base, forked)
					})
				}
			}
		})
	}
}

// TestOracleSnapshotWorkloads: every workload under every protection policy,
// uninterrupted vs snapshot-at-a-pseudo-random-cycle + restore. The resumed
// run must retire the identical instruction stream and end with identical
// cycles, stats and event-log bytes — the checkpoint is architecturally
// invisible.
func TestOracleSnapshotWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	prots := []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit, splitmem.ProtSplitNX,
	}
	for _, prog := range workloads.Catalog() {
		for _, prot := range prots {
			prog, prot := prog, prot
			t.Run(fmt.Sprintf("%s/%v", prog.Name, prot), func(t *testing.T) {
				cfg := splitmem.Config{Protection: prot, RandomizeStack: true, Seed: 7}
				base := runWorkload(t, prog, cfg)
				snapAt := pseudoCycle(prog.Name+prot.String(), base.cycles)
				resumed := runWorkloadResumed(t, prog, cfg, snapAt)
				compareDigests(t, fmt.Sprintf("%s@%d", prog.Name, snapAt), base, resumed)
			})
		}
	}
}

// TestOracleSnapshotWilander: all 32 attack forms of the extended Wilander
// grid as one-shot programs, snapshot mid-attack + restore vs uninterrupted,
// under both split deployments. Detection must land on the same cycle with
// byte-identical events either way.
func TestOracleSnapshotWilander(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	for _, prot := range []splitmem.Protection{splitmem.ProtSplit, splitmem.ProtSplitNX} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			for _, tech := range attacks.AllTechniques() {
				for _, seg := range attacks.Segments() {
					src, stdin, err := attacks.OneShot(tech, seg)
					if err != nil {
						continue // form not applicable
					}
					name := fmt.Sprintf("%v/%v", tech, seg)
					t.Run(name, func(t *testing.T) {
						prog := workloads.Program{Name: "wilander", Src: guest.WithCRT(src), Input: string(stdin)}
						cfg := splitmem.Config{Protection: prot}
						base := runWorkload(t, prog, cfg)
						snapAt := pseudoCycle(name+prot.String(), base.cycles)
						resumed := runWorkloadResumed(t, prog, cfg, snapAt)
						compareDigests(t, name, base, resumed)
					})
				}
			}
		})
	}
}

// compareAttack checks the full-fidelity record of two attack runs.
func compareAttack(t *testing.T, name string, fast, slow attacks.Result) {
	t.Helper()
	if fast.ShellSpawned != slow.ShellSpawned || fast.Detected != slow.Detected ||
		fast.Killed != slow.Killed || fast.Signal != slow.Signal ||
		fast.Exited != slow.Exited || fast.Status != slow.Status ||
		fast.FaultAddr != slow.FaultAddr {
		t.Errorf("%s: outcomes diverge:\nfast %+v\nslow %+v", name, fast, slow)
	}
	if scrubDecode(fast.Stats) != scrubDecode(slow.Stats) {
		t.Errorf("%s: stats diverge:\nfast %+v\nslow %+v",
			name, scrubDecode(fast.Stats), scrubDecode(slow.Stats))
	}
	if !bytes.Equal(fast.EventsJSONL, slow.EventsJSONL) {
		t.Errorf("%s: event logs diverge:\nfast:\n%s\nslow:\n%s",
			name, fast.EventsJSONL, slow.EventsJSONL)
	}
	if fast.Output != slow.Output {
		t.Errorf("%s: outputs diverge: %q vs %q", name, fast.Output, slow.Output)
	}
}

// TestOracleWilanderGrid: all techniques x all injection segments (the
// paper's Table 1 benchmark, extended), all three engine arms, under both
// split deployments. The detection event — kind, EIP, dumped shellcode
// bytes — must be byte-for-byte identical: detection happens at the unique
// fetch of the first injected instruction, and no fast path may move it.
func TestOracleWilanderGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	for _, prot := range []splitmem.Protection{splitmem.ProtSplit, splitmem.ProtSplitNX} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			grids := make([][]attacks.CellResult, len(engineArms))
			for i, arm := range engineArms {
				cfg := splitmem.Config{Protection: prot}
				arm.mut(&cfg)
				cells, err := attacks.RunExtendedWilander(cfg)
				if err != nil {
					t.Fatal(err)
				}
				grids[i] = cells
				// Vacuity over the aggregate grid: individual one-shot forms
				// may retire too few instructions to cross the hotness
				// threshold, but the grid as a whole must exercise each arm's
				// intended engine.
				var agg splitmem.Stats
				for _, c := range cells {
					if !c.NA {
						agg.SuperblockEntered += c.Result.Stats.SuperblockEntered
						agg.DecodeHits += c.Result.Stats.DecodeHits
					}
				}
				checkArmVacuity(t, arm.name, agg)
			}
			for ai := 1; ai < len(engineArms); ai++ {
				a, b := grids[ai-1], grids[ai]
				pair := engineArms[ai-1].name + "-vs-" + engineArms[ai].name
				if len(a) != len(b) {
					t.Fatalf("%s: cell counts diverge: %d vs %d", pair, len(a), len(b))
				}
				for i := range a {
					f, s := a[i], b[i]
					if f.Tech != s.Tech || f.Seg != s.Seg || f.NA != s.NA {
						t.Fatalf("%s: grid order diverged at %d", pair, i)
					}
					if f.NA {
						continue
					}
					name := fmt.Sprintf("%s/%v/%v", pair, f.Tech, f.Seg)
					compareAttack(t, name, f.Result, s.Result)
				}
			}
		})
	}
}

// TestOracleScenarios: the real-world exploit scenarios (Table 2), all three
// engine arms, across the response modes.
func TestOracleScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is broad")
	}
	responses := []splitmem.ResponseMode{splitmem.Break, splitmem.Observe, splitmem.Forensics}
	for _, sc := range attacks.Scenarios() {
		for _, resp := range responses {
			sc, resp := sc, resp
			t.Run(fmt.Sprintf("%s/%v", sc.Key, resp), func(t *testing.T) {
				results := make([]attacks.Result, len(engineArms))
				for i, arm := range engineArms {
					cfg := splitmem.Config{Protection: splitmem.ProtSplit, Response: resp}
					if resp == splitmem.Forensics {
						cfg.ForensicShellcode = splitmem.ExitShellcode()
					}
					arm.mut(&cfg)
					r, err := attacks.RunScenario(sc.Key, cfg)
					if err != nil {
						t.Fatal(err)
					}
					results[i] = r
					checkArmVacuity(t, arm.name, r.Stats)
				}
				for i := 1; i < len(engineArms); i++ {
					pair := engineArms[i-1].name + "-vs-" + engineArms[i].name
					compareAttack(t, sc.Key+"/"+pair, results[i-1], results[i])
				}
			})
		}
	}
}
