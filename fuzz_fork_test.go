package splitmem_test

// FuzzForkCoW: differential fuzzing of the copy-on-write frame layer. Each
// fuzz input derives a self-modifying hot-loop program (the superblock fuzz
// generator — its imm-byte patches hammer write generations, the worst case
// for shared frames), optionally under chaos (bit flips mutate frames the
// siblings share; TLB churn bumps decode epochs). The program runs cold to
// completion, then again to a pseudo-random fork point where TWO siblings are
// forked off the same sealed base. Both siblings and the parent then run to
// completion over the same shared frames, and all four digests — cold, parent,
// sibling A, sibling B — must be identical: same retired stream, cycles,
// scrubbed stats and event-log bytes. Any divergence is CoW cross-talk (one
// sibling observing another's writes) or a missed unshare.

import (
	"bytes"
	"fmt"
	"testing"

	"splitmem"
	"splitmem/internal/isa"
	"splitmem/internal/workloads"
)

// forkSiblingDigests runs prog to forkAt, forks two siblings off the parent,
// verifies both are bit-identical to the parent at the fork point, then runs
// parent and both siblings to completion and returns their digests (parent,
// a, b) for comparison against each other and a cold-booted reference.
func forkSiblingDigests(t *testing.T, prog workloads.Program, cfg splitmem.Config, forkAt uint64) (parent, a, b workloadDigest) {
	t.Helper()
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := workloadDigest{trace: 14695981039346656037}
	m.CPU().TraceHook = func(eip uint32, in isa.Instr) {
		prefix.trace = traceHash(prefix.trace, eip, in)
	}
	p, err := m.LoadAsm(prog.Src, prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	pid := p.PID
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	res := m.Run(forkAt)

	ref, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sibA, err := m.Fork()
	if err != nil {
		t.Fatalf("first fork at cycle %d: %v", forkAt, err)
	}
	sibB, err := m.Fork()
	if err != nil {
		t.Fatalf("second fork at cycle %d: %v", forkAt, err)
	}
	for i, s := range []*splitmem.Machine{sibA, sibB} {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, snap) {
			t.Errorf("sibling %d not bit-identical to parent at fork point (%d vs %d bytes)",
				i, len(snap), len(ref))
		}
	}

	finish := func(fm *splitmem.Machine, r splitmem.RunResult) workloadDigest {
		d := prefix // copy: every run extends the same retired-stream prefix
		fm.CPU().TraceHook = func(eip uint32, in isa.Instr) {
			d.trace = traceHash(d.trace, eip, in)
		}
		if r.Reason == splitmem.ReasonBudget || r.Reason == splitmem.ReasonWaitingInput {
			r = fm.Run(40_000_000_000)
		}
		fp, ok := fm.Kernel().Process(pid)
		if !ok {
			t.Fatalf("%s: pid %d lost across fork", prog.Name, pid)
		}
		d.reason = r.Reason
		d.exited, d.status = fp.Exited()
		s := fm.Stats()
		d.raw = s
		d.stats = scrubDecode(s)
		d.retired = s.Instructions
		d.cycles = s.Cycles
		var err error
		d.events, err = fm.EventsJSONL()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a = finish(sibA, res)
	b = finish(sibB, res)
	parent = finish(m, res)
	sibA.Close()
	sibB.Close()
	m.Close()
	return parent, a, b
}

func FuzzForkCoW(f *testing.F) {
	f.Add([]byte{})                           // minimal program, site patch
	f.Add([]byte{7, 3, 4, 1, 2, 9, 0x40})     // mixed ops, body patch
	f.Add([]byte("forkcow"))                  // chaos arm (odd last byte)
	f.Add([]byte{0, 11, 6, 5, 4, 3, 2, 1, 3}) // chaos arm, body patch

	f.Fuzz(func(t *testing.T, data []byte) {
		prog := workloads.Program{Name: "forkfuzz", Src: sbFuzzProgram(data)}
		var chaos splitmem.ChaosConfig
		if len(data) > 0 && data[len(data)-1]%2 == 1 {
			chaos = splitmem.ChaosConfig{
				Seed:      0xF0 ^ uint64(data[0])<<8 ^ uint64(len(data)),
				TLBFlush:  0.002,
				ITLBEvict: 0.01,
				BitFlip:   0.0005,
			}
		}
		cfg := splitmem.Config{Protection: splitmem.ProtSplit, Paranoid: true, Chaos: chaos}
		cold := runWorkload(t, prog, cfg)
		forkAt := pseudoCycle(fmt.Sprintf("forkcow%x", data), cold.cycles)
		parent, a, b := forkSiblingDigests(t, prog, cfg, forkAt)
		compareDigests(t, "forkcow/sibling-a-vs-b", a, b)
		compareDigests(t, "forkcow/parent-vs-sibling", parent, a)
		compareDigests(t, "forkcow/cold-vs-fork", cold, a)
	})
}
