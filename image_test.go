package splitmem_test

// Image/Fork API unit tests: fork equivalence at the snapshot level, CoW
// isolation between concurrently running siblings (run these under -race),
// base refcount draining on Close, the serialized-image round trip, and the
// typed-error contract (ErrBadImage on every malformed input). The
// architectural-equivalence proof lives in oracle_test.go
// (TestOracleFork*) and chaos_test.go (TestChaosForkMatrix).

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"splitmem"
)

// isoSrc dirties its stack page, blocks on stdin, then hammers the same
// stack slot with the byte it read and exits with the value it reads back.
// Forked siblings run it concurrently over the same shared physical frame:
// any copy-on-write leak makes a sibling exit with the other's byte.
const isoSrc = `
_start:
    sub esp, 64
    mov esi, 0x5A
    store [esp+8], esi
    mov ebx, 0
    mov ecx, esp
    mov edx, 1
    mov eax, 3
    int 0x80
    load esi, [esp]
    and esi, 255
    mov ecx, 300000
hammer:
    store [esp+8], esi
    load edi, [esp+8]
    dec ecx
    cmp ecx, 0
    jnz hammer
    mov ebx, edi
    mov eax, 1
    int 0x80
`

// parkedMachine boots isoSrc and runs it to the stdin block, returning a
// machine parked at a fork point with a dirty, shareable stack frame.
func parkedMachine(t *testing.T) *splitmem.Machine {
	t.Helper()
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadAsm(isoSrc, "iso"); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(40_000_000_000); res.Reason != splitmem.ReasonWaitingInput {
		t.Fatalf("parked with reason %v, want waiting-input", res.Reason)
	}
	return m
}

// TestForkSiblingIsolation forks eight siblings off one parked parent and
// runs them concurrently, each hammering the same guest stack page with a
// different byte. Every sibling must exit with its own byte (no sibling ever
// observes another's writes), every sibling must have paid at least one
// copy-on-write unshare doing it, and the parent must still be able to run
// to its own, different, answer afterwards.
func TestForkSiblingIsolation(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()

	const n = 8
	sibs := make([]*splitmem.Machine, n)
	for i := range sibs {
		c, err := m.Fork()
		if err != nil {
			t.Fatal(err)
		}
		sibs[i] = c
	}
	var wg sync.WaitGroup
	for i, c := range sibs {
		wg.Add(1)
		go func(i int, c *splitmem.Machine) {
			defer wg.Done()
			defer c.Close()
			p, ok := c.Kernel().Process(1)
			if !ok {
				t.Errorf("sibling %d: root process lost", i)
				return
			}
			want := 0x40 + i
			p.StdinWrite([]byte{byte(want)})
			p.StdinClose()
			if res := c.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
				t.Errorf("sibling %d: stopped with %v", i, res.Reason)
				return
			}
			exited, status := p.Exited()
			if !exited || status != want {
				t.Errorf("sibling %d: exited=%v status=%#x, want %#x — a sibling's writes leaked through a shared frame",
					i, exited, status, want)
			}
			if cow := c.Stats().MemCowCopies; cow == 0 {
				t.Errorf("sibling %d: no copy-on-write unshares — the isolation test never touched a shared frame", i)
			}
		}(i, c)
	}
	wg.Wait()

	// The parent, forked from eight times and hammered around, still owns
	// its own fate.
	p, ok := m.Kernel().Process(1)
	if !ok {
		t.Fatal("parent root process lost")
	}
	p.StdinWrite([]byte{0x77})
	p.StdinClose()
	if res := m.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("parent stopped with %v", res.Reason)
	}
	if exited, status := p.Exited(); !exited || status != 0x77 {
		t.Fatalf("parent exited=%v status=%#x, want 0x77", exited, status)
	}
}

// TestForkRefcountsDrainOnClose pins the Base lifecycle: every attached
// machine holds one reference, Close releases it, and a fully retired
// generation of forks leaves the refcount at zero. Close is idempotent.
func TestForkRefcountsDrainOnClose(t *testing.T) {
	m := parkedMachine(t)
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	base := m.SharedBase()
	if base == nil {
		t.Fatal("no shared base after Image()")
	}
	if got := base.Refs(); got != 1 {
		t.Fatalf("refs after Image() = %d, want 1 (the parent)", got)
	}
	c1, err := img.Boot()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := img.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if c1.SharedBase() != base || c2.SharedBase() != base {
		t.Fatal("booted machines attached to a different base than the parent sealed")
	}
	if got := base.Refs(); got != 3 {
		t.Fatalf("refs with two forks live = %d, want 3", got)
	}
	c1.Close()
	c2.Close()
	if got := base.Refs(); got != 1 {
		t.Fatalf("refs after closing forks = %d, want 1", got)
	}
	m.Close()
	if got := base.Refs(); got != 0 {
		t.Fatalf("refs after closing parent = %d, want 0", got)
	}
	m.Close() // idempotent
	if got := base.Refs(); got != 0 {
		t.Fatalf("refs after double close = %d, want 0", got)
	}
}

// TestImageBootMatchesSnapshot: a machine booted from an Image carries
// exactly the architectural state a Snapshot of the source machine captured
// — its own snapshot is byte-identical.
func TestImageBootMatchesSnapshot(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()
	want, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	c, err := img.Boot()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("booted machine's snapshot differs from the source's (%d vs %d bytes)", len(got), len(want))
	}
}

// TestImageRoundTrip: WriteTo/ReadImage preserve the image exactly — a
// machine booted from the deserialized copy snapshots byte-identical to one
// booted from the original, and ReadFrom fills a zero Image the same way.
func TestImageRoundTrip(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	img2, err := splitmem.ReadImage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	c, err := img2.Boot()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("round-tripped boot differs from source snapshot (%d vs %d bytes)", len(got), len(want))
	}

	var img3 splitmem.Image
	if _, err := img3.ReadFrom(bytes.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
	c3, err := img3.Boot()
	if err != nil {
		t.Fatal(err)
	}
	c3.Close()
}

// TestImageRejectsCorruption: every corruption — truncation anywhere, a bit
// flip anywhere — is rejected by ReadImage with ErrBadImage before any
// machine state is built.
func TestImageRejectsCorruption(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	for _, cut := range []int{0, 1, len(wire) / 2, len(wire) - 1} {
		if _, err := splitmem.ReadImage(bytes.NewReader(wire[:cut])); !errors.Is(err, splitmem.ErrBadImage) {
			t.Errorf("truncation to %d bytes: err %v, want ErrBadImage", cut, err)
		}
	}
	// Flip one bit at a spread of positions; the CRC trailer must catch all
	// of them (flips inside the trailer itself fail the checksum comparison).
	step := len(wire)/97 + 1
	for pos := 0; pos < len(wire); pos += step {
		mut := bytes.Clone(wire)
		mut[pos] ^= 0x10
		if _, err := splitmem.ReadImage(bytes.NewReader(mut)); !errors.Is(err, splitmem.ErrBadImage) {
			t.Errorf("bit flip at %d: err %v, want ErrBadImage", pos, err)
		}
	}
}

// TestImageBootRejectsBadMeta: a structurally valid image (CRC recomputed
// after tampering) whose metadata section is garbage must fail at Boot with
// ErrBadImage, not panic or build a half-machine.
func TestImageBootRejectsBadMeta(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// The meta section starts right after magic+version+length; shredding a
	// byte inside it and re-signing the CRC yields an image ReadImage accepts
	// but whose structure Boot must vet. Some flips land in semantically
	// tolerated fields (a register value is just a different register value),
	// so the contract is: Boot never panics, every failure is typed
	// ErrBadImage, and structural damage is actually caught at least once.
	rejected := 0
	for off := 40; off < 300; off += 20 {
		mut := bytes.Clone(wire)
		mut[off] ^= 0xFF
		body := mut[:len(mut)-4]
		crc := splitmem.SnapshotChecksum(body)
		mut[len(mut)-4] = byte(crc)
		mut[len(mut)-3] = byte(crc >> 8)
		mut[len(mut)-2] = byte(crc >> 16)
		mut[len(mut)-1] = byte(crc >> 24)
		img2, err := splitmem.ReadImage(bytes.NewReader(mut))
		if err != nil {
			if !errors.Is(err, splitmem.ErrBadImage) {
				t.Errorf("shred at %d: ReadImage err %v, want ErrBadImage", off, err)
			}
			rejected++
			continue
		}
		if bm, err := img2.Boot(); err != nil {
			if !errors.Is(err, splitmem.ErrBadImage) {
				t.Errorf("shred at %d: Boot err %v, want ErrBadImage", off, err)
			}
			rejected++
		} else {
			bm.Close()
		}
	}
	if rejected == 0 {
		t.Error("no shredded image was ever rejected — meta validation is vacuous")
	}

	var nilImg *splitmem.Image
	if _, err := nilImg.Boot(); !errors.Is(err, splitmem.ErrBadImage) {
		t.Errorf("nil image boot: err %v, want ErrBadImage", err)
	}
	var zero splitmem.Image
	if _, err := zero.Boot(); !errors.Is(err, splitmem.ErrBadImage) {
		t.Errorf("zero image boot: err %v, want ErrBadImage", err)
	}
}

// TestForkOfFork: sealing is idempotent — a fork of a freshly forked machine
// reuses the same base (no frame copying cascade), and the grandchild still
// runs to the right answer.
func TestForkOfFork(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()
	c1, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := c1.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c1.SharedBase() != c2.SharedBase() {
		t.Fatal("fork of an undisturbed fork re-sealed a new base")
	}
	p, ok := c2.Kernel().Process(1)
	if !ok {
		t.Fatal("grandchild root process lost")
	}
	p.StdinWrite([]byte{0x33})
	p.StdinClose()
	if res := c2.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("grandchild stopped with %v", res.Reason)
	}
	if exited, status := p.Exited(); !exited || status != 0x33 {
		t.Fatalf("grandchild exited=%v status=%#x, want 0x33", exited, status)
	}
}

// TestForkSharedMemoryAccounting sanity-checks the dedup math the warm-pool
// bench reports: a fresh fork shares every frame, and finishing the guest
// privatizes only the frames it actually wrote.
func TestForkSharedMemoryAccounting(t *testing.T) {
	m := parkedMachine(t)
	defer m.Close()
	c, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Stats()
	if s.MemPrivateFrames != 0 || s.MemSharedFrames == 0 {
		t.Fatalf("fresh fork: shared=%d private=%d, want all-shared", s.MemSharedFrames, s.MemPrivateFrames)
	}
	total := s.MemSharedFrames
	p, _ := c.Kernel().Process(1)
	p.StdinWrite([]byte{1})
	p.StdinClose()
	c.Run(40_000_000_000)
	s = c.Stats()
	if s.MemSharedFrames+s.MemPrivateFrames != total {
		t.Fatalf("frame accounting leaked: shared=%d private=%d, total was %d",
			s.MemSharedFrames, s.MemPrivateFrames, total)
	}
	if s.MemPrivateFrames == 0 || s.MemPrivateFrames >= total/2 {
		t.Fatalf("finished fork privatized %d of %d frames — expected a small nonzero working set",
			s.MemPrivateFrames, total)
	}
	if s.MemCowCopies == 0 {
		t.Fatal("finished fork recorded no copy-on-write unshares")
	}
}
